#include "obs/trend.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/aggregate.hpp"
#include "obs/hw.hpp"

namespace pkifmm::obs {

namespace {

/// Per-phase metrics copied from the summary's `hw.<phase>.<event>` /
/// `mem.<phase>.<field>` flat counters into the run record. These are
/// exact-name matches — hw/mem counters are inclusive per span name
/// and must never be prefix-summed (see Recorder::fold_hw).
struct AuxMetric {
  const char* prefix;  ///< counter namespace ("hw.", "mem.", "wait.")
  const char* suffix;  ///< counter suffix incl. leading dot
  const char* key;     ///< key in the record's phase object
  double TrendOptions::* floor;  ///< skip values below this
  double TrendOptions::* ratio;  ///< warn bound
};
const AuxMetric kAuxMetrics[] = {
    {"hw.", ".cycles", "cycles", &TrendOptions::min_hw,
     &TrendOptions::hw_ratio},
    {"hw.", ".instructions", "instructions", &TrendOptions::min_hw,
     &TrendOptions::hw_ratio},
    {"hw.", ".l1d_misses", "l1d_misses", &TrendOptions::min_hw,
     &TrendOptions::hw_ratio},
    {"hw.", ".llc_misses", "llc_misses", &TrendOptions::min_hw,
     &TrendOptions::hw_ratio},
    {"hw.", ".branch_misses", "branch_misses", &TrendOptions::min_hw,
     &TrendOptions::hw_ratio},
    {"hw.", ".minor_faults", "minor_faults", &TrendOptions::min_hw,
     &TrendOptions::hw_ratio},
    {"mem.", ".peak_rss_delta_bytes", "peak_rss_delta_bytes",
     &TrendOptions::min_hw, &TrendOptions::hw_ratio},
    // Blocked-recv time per phase (--flow-trace runs): warn-only like
    // hw/mem — wait time is scheduler-sensitive, and gating hard on it
    // would make every loaded CI box a false failure.
    {"wait.", ".seconds", "wait_seconds", &TrendOptions::min_seconds,
     &TrendOptions::time_ratio},
};

/// Hard-gated metrics (GateOptions semantics). Floors resolved from
/// TrendOptions at check time.
struct HardMetric {
  const char* key;
  double TrendOptions::* ratio;
  double TrendOptions::* floor;
};
const HardMetric kHardMetrics[] = {
    {"wall", &TrendOptions::time_ratio, &TrendOptions::min_seconds},
    {"cpu", &TrendOptions::time_ratio, &TrendOptions::min_seconds},
    {"flops", &TrendOptions::work_ratio, &TrendOptions::min_flops},
    {"msgs_sent", &TrendOptions::work_ratio, &TrendOptions::min_msgs},
    {"bytes_sent", &TrendOptions::work_ratio, &TrendOptions::min_bytes},
};

double median(std::vector<double> v) {
  PKIFMM_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

Json finding(const std::string& phase, const std::string& metric,
             double reference, double fresh, double ratio, double limit) {
  Json f = Json::object();
  f.set("phase", phase);
  f.set("metric", metric);
  f.set("reference", reference);
  f.set("fresh", fresh);
  f.set("ratio", ratio);
  f.set("limit", limit);
  return f;
}

}  // namespace

Json run_record_from_summary(const Json& summary, const std::string& bench,
                             const std::string& git_sha,
                             const Json& config) {
  validate_summary_json(summary);
  Json rec = Json::object();
  rec.set("schema", kRunSchema);
  rec.set("bench", bench);
  rec.set("git_sha", git_sha.empty() ? "unknown" : git_sha);
  rec.set("nranks", summary.at("nranks").as_int());
  rec.set("nruns", summary.at("nruns").as_int());

  const Json& metrics = summary.at("metrics");
  auto metric_sum = [&](const std::string& name) -> double {
    return metrics.contains(name) ? metrics.at(name).at("sum").as_double()
                                  : -1.0;
  };
  const double perf_ranks = metric_sum("hw.ranks_perf");
  const double fb_ranks = metric_sum("hw.ranks_fallback");
  const char* src = "none";
  if (perf_ranks > 0 && fb_ranks > 0)
    src = "mixed";
  else if (perf_ranks > 0)
    src = "perf";
  else if (fb_ranks > 0)
    src = "fallback";
  rec.set("hw_source", src);
  rec.set("config", config);

  Json phases = Json::object();
  for (const std::string& name : summary.at("phases").keys()) {
    const Json& sp = summary.at("phases").at(name);
    Json p = Json::object();
    for (const char* f : {"wall", "cpu", "flops", "msgs_sent", "bytes_sent"})
      p.set(f, sp.at(f).at("sum").as_double());
    for (const AuxMetric& m : kAuxMetrics) {
      const double v =
          metric_sum(std::string(m.prefix) + name + m.suffix);
      if (v >= 0.0) p.set(m.key, v);
    }
    phases.set(name, std::move(p));
  }
  rec.set("phases", std::move(phases));

  Json mem = Json::object();
  mem.set("peak_rss_bytes",
          static_cast<std::int64_t>(peak_rss_bytes()));
  rec.set("mem", std::move(mem));

  // Optional numerical-health summary (FmmOptions::health runs): the
  // sampled relative error becomes a warn-gated longitudinal signal
  // alongside the perf metrics.
  if (summary.contains("health")) {
    const Json& hs = summary.at("health").at("sample");
    Json health = Json::object();
    health.set("sampled_rel_err", hs.at("rel_err").as_double());
    health.set("sample_count", hs.at("count").as_double());
    rec.set("health", std::move(health));
  }
  return rec;
}

void validate_run_json(const Json& doc) {
  PKIFMM_CHECK_MSG(doc.type() == Json::Type::kObject,
                   "run record is not an object");
  PKIFMM_CHECK_MSG(doc.contains("schema") &&
                       doc.at("schema").as_string() == kRunSchema,
                   "run record schema is not '" << kRunSchema << "'");
  for (const char* key : {"bench", "git_sha"})
    PKIFMM_CHECK_MSG(doc.contains(key) && doc.at(key).type() ==
                                              Json::Type::kString,
                     "run record missing string field '" << key << "'");
  for (const char* key : {"nranks", "nruns"})
    PKIFMM_CHECK_MSG(doc.contains(key) && doc.at(key).is_number(),
                     "run record missing numeric field '" << key << "'");
  PKIFMM_CHECK_MSG(doc.contains("phases") &&
                       doc.at("phases").type() == Json::Type::kObject,
                   "run record missing 'phases' object");
  for (const std::string& name : doc.at("phases").keys()) {
    const Json& p = doc.at("phases").at(name);
    PKIFMM_CHECK_MSG(p.type() == Json::Type::kObject,
                     "run phase '" << name << "' is not an object");
    for (const char* f : {"wall", "cpu", "flops"})
      PKIFMM_CHECK_MSG(p.contains(f) && p.at(f).is_number(),
                       "run phase '" << name << "' missing '" << f << "'");
  }
}

void append_run_record(const std::string& path, const Json& record) {
  validate_run_json(record);
  std::ofstream out(path, std::ios::app);
  PKIFMM_CHECK_MSG(out.good(),
                   "append_run_record: cannot open '" << path << "'");
  out << record.dump() << "\n";
  PKIFMM_CHECK_MSG(out.good(),
                   "append_run_record: write to '" << path << "' failed");
}

std::vector<Json> read_run_history(const std::string& path) {
  std::ifstream in(path);
  PKIFMM_CHECK_MSG(in.good(),
                   "read_run_history: cannot open '" << path << "'");
  std::vector<Json> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Json rec;
    try {
      rec = Json::parse(line);
      validate_run_json(rec);
    } catch (const std::exception& e) {
      PKIFMM_CHECK_MSG(false, "read_run_history: " << path << ":" << lineno
                                                   << ": " << e.what());
    }
    out.push_back(std::move(rec));
  }
  return out;
}

Json trend_analyze(const std::vector<Json>& records,
                   const TrendOptions& opt) {
  for (const Json& r : records) validate_run_json(r);

  Json report = Json::object();
  Json regressions = Json::array();
  Json warnings = Json::array();
  std::int64_t checked = 0;

  if (records.size() < 2) {
    report.set("ok", true);
    report.set("checked", checked);
    report.set("window", 0);
    report.set("newest_sha",
               records.empty() ? "" : records.back().at("git_sha")
                                          .as_string());
    report.set("regressions", std::move(regressions));
    report.set("warnings", std::move(warnings));
    return report;
  }

  const Json& fresh = records.back();
  const std::size_t navail = records.size() - 1;
  const std::size_t nref =
      std::min<std::size_t>(navail, static_cast<std::size_t>(
                                        std::max(1, opt.window)));
  // Reference slice: the nref records immediately preceding the newest.
  const std::size_t ref0 = navail - nref;

  // Union of phase names across reference records, in first-seen order.
  std::vector<std::string> phase_names;
  for (std::size_t i = ref0; i < navail; ++i)
    for (const std::string& name : records[i].at("phases").keys())
      if (std::find(phase_names.begin(), phase_names.end(), name) ==
          phase_names.end())
        phase_names.push_back(name);

  const Json& fphases = fresh.at("phases");
  for (const std::string& phase : phase_names) {
    // Median over the reference records that have (phase, metric).
    auto ref_median = [&](const char* metric) -> std::vector<double> {
      std::vector<double> vals;
      for (std::size_t i = ref0; i < navail; ++i) {
        const Json& ph = records[i].at("phases");
        if (ph.contains(phase) && ph.at(phase).contains(metric))
          vals.push_back(ph.at(phase).at(metric).as_double());
      }
      return vals;
    };

    if (!fphases.contains(phase)) {
      // Phase disappeared: only flag if every reference record had it
      // (a phase present in one noisy record should not hard-fail).
      const std::vector<double> walls = ref_median("wall");
      if (walls.size() == nref)
        regressions.push_back(
            finding(phase, "missing", median(walls), 0.0, 0.0, 0.0));
      continue;
    }
    const Json& fp = fphases.at(phase);

    for (const HardMetric& m : kHardMetrics) {
      if (!fp.contains(m.key)) continue;
      const std::vector<double> vals = ref_median(m.key);
      if (vals.empty()) continue;
      const double now = fp.at(m.key).as_double();
      const double floor = opt.*(m.floor);
      if (now < floor) continue;
      ++checked;
      const double ref = median(vals);
      const double ratio = now / std::max(ref, floor);
      if (ratio > opt.*(m.ratio))
        regressions.push_back(
            finding(phase, m.key, ref, now, ratio, opt.*(m.ratio)));
    }
    for (const AuxMetric& m : kAuxMetrics) {
      if (!fp.contains(m.key)) continue;
      const std::vector<double> vals = ref_median(m.key);
      if (vals.empty()) continue;
      const double now = fp.at(m.key).as_double();
      const double floor = opt.*(m.floor);
      if (now < floor) continue;
      ++checked;
      const double ref = median(vals);
      const double ratio = now / std::max(ref, floor);
      if (ratio > opt.*(m.ratio))
        warnings.push_back(
            finding(phase, m.key, ref, now, ratio, opt.*(m.ratio)));
    }
  }

  // Sampled-error trend (health-enabled runs): warn-only, against the
  // median of the reference records that carry the field. Accuracy is
  // configuration-determined, not machine-determined, but benches mix
  // health-on and health-off records in one history, so a hard gate
  // would mis-fire whenever the field's presence flips.
  if (fresh.contains("health")) {
    const Json& fh = fresh.at("health");
    std::vector<double> vals;
    for (std::size_t i = ref0; i < navail; ++i)
      if (records[i].contains("health"))
        vals.push_back(
            records[i].at("health").at("sampled_rel_err").as_double());
    if (!vals.empty() && fh.contains("sampled_rel_err")) {
      const double now = fh.at("sampled_rel_err").as_double();
      if (now >= opt.min_err) {
        ++checked;
        const double ref = median(vals);
        const double ratio = now / std::max(ref, opt.min_err);
        if (ratio > opt.err_ratio)
          warnings.push_back(finding("health", "sampled_rel_err", ref, now,
                                     ratio, opt.err_ratio));
      }
    }
  }

  report.set("ok", regressions.size() == 0 &&
                       (!opt.strict || warnings.size() == 0));
  report.set("checked", checked);
  report.set("window", static_cast<std::int64_t>(nref));
  report.set("newest_sha", fresh.at("git_sha").as_string());
  report.set("regressions", std::move(regressions));
  report.set("warnings", std::move(warnings));
  return report;
}

}  // namespace pkifmm::obs
