#pragma once
/// \file health.hpp
/// \brief Runtime numerical-health primitives: sampling, digests,
/// sentinels, fault injection, and drift tracking.
///
/// The performance stack (spans, hw counters, flows) says nothing about
/// whether the answers are still *right*. This header supplies the
/// building blocks the health layer (FmmOptions::health) composes into
/// four online signal families, all recorded as plain Recorder counters
/// so the existing summary/trend pipeline aggregates them for free:
///
///  1. **Accuracy sampling** — `health_sampled` deterministically picks
///     a (seed, step)-derived subset of target gids; the picked targets
///     are re-evaluated against all sources via Kernel::direct_sample
///     and compared to the FMM potentials. The counters
///     `health.sample.{count,err2,ref2}` sum cleanly across ranks, so
///     the summary-level sampled relative error is the exact L2-norm
///     ratio sqrt(Σerr2 / Σref2) over the whole sample.
///  2. **Invariant sentinels** — `nonfinite_count` scans buffers for
///     NaN/Inf at phase boundaries; the moment check (Evaluator) tests
///     the physical invariant that a box's total equivalent "charge"
///     matches its sources for kernels with a 1/r monopole term.
///  3. **State digests** — `ChunkDigest` builds order-independent
///     digests of per-node chunks (equivalent densities, potentials,
///     ghost buffers): each chunk hashes its elements order-dependently
///     (bit-exact layout check), then the per-chunk hashes are *summed*
///     as counters, making the whole digest independent of node
///     iteration order, thread count, and rank partition. A chunk
///     contributes its top 32 hash bits as a double, so counter sums
///     stay exact (doubles hold 53-bit integers) up to ~2^21 chunks.
///  4. **Drift** — `DriftMonitor` baselines the per-step sampled error
///     over a short warmup and flags steps whose error exceeds
///     `ratio ×` that baseline (catching incremental-repair divergence
///     in production rather than in the parity suite).
///
/// Everything here is allocation-free past construction and cheap
/// enough to sit on phase boundaries; the *sampling* cost is governed
/// by FmmOptions::health_sample_rate.
///
/// Fault injection (`PKIFMM_INJECT_CORRUPTION=<phase>:<rank>:<bit|nan>`)
/// flips one bit (or NaN-poisons) the first instrumented chunk of a
/// chosen phase on a chosen rank, proving each sentinel/digest detects
/// the corruption class it claims to. Debug/test facility only; the
/// env var is read once per process.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace pkifmm::obs {

// ------------------------------------------------------------ hashing

/// splitmix64 finalizer: a cheap, high-quality 64-bit mix.
inline std::uint64_t health_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic membership test for the accuracy sample: true iff
/// target `gid` is sampled at `rate` for this (seed, step). Depends
/// only on (gid, seed, step) — never on rank count, thread count, or
/// iteration order — so the sample set is reproducible across any
/// execution configuration. rate >= 1 samples everything; rate <= 0
/// nothing.
inline bool health_sampled(std::int64_t gid, std::uint64_t seed,
                           std::uint64_t step, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const std::uint64_t h = health_mix64(
      static_cast<std::uint64_t>(gid) ^ health_mix64(seed ^ (step * 0x9e3779b97f4a7c15ULL)));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

/// Incremental order-dependent hash of a sequence of doubles (one
/// chunk). finish() returns the chunk's 32-bit contribution as a
/// double, suitable for summing into an order-independent counter
/// digest (see file comment). -0.0 is canonicalized to +0.0 so digests
/// don't distinguish signed zeros that compare equal.
class ChunkDigest {
 public:
  explicit ChunkDigest(std::uint64_t seed = 0)
      : h_(0x243f6a8885a308d3ULL ^ health_mix64(seed)) {}

  void add(double v) {
    std::uint64_t bits;
    if (v == 0.0) v = 0.0;  // collapse -0.0
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h_ = (h_ ^ bits) * 0x100000001b3ULL;
  }

  /// Finalized 32-bit chunk value in [0, 2^32), as a double.
  double finish() const {
    return static_cast<double>(health_mix64(h_) >> 32);
  }

 private:
  std::uint64_t h_;
};

/// One-shot ChunkDigest over a contiguous span.
inline double chunk_digest(std::span<const double> v, std::uint64_t seed) {
  ChunkDigest d(seed);
  for (double x : v) d.add(x);
  return d.finish();
}

/// Order-dependent digest of a raw byte payload (comm-transit
/// integrity): same 32-bits-as-double convention as ChunkDigest so
/// per-message digests fold into summable counters.
double bytes_digest(const void* data, std::size_t n);

/// Number of non-finite (NaN or Inf) elements in `v`.
std::size_t nonfinite_count(std::span<const double> v);

// ---------------------------------------------------- fault injection

/// Which instrumented buffer an injection targets. Each phase maps to
/// exactly one detection surface:
///   kS2u    -> upward equivalent densities (digest.u + post-S2U scan)
///   kReduce -> reduced equivalent densities (digest.reduce + scan)
///   kD2t    -> final potentials (digest.pot + post-D2T scan)
///   kGhost  -> consumer-side ghost densities (ghost digest pair)
enum class InjectPhase : std::uint8_t { kNone, kS2u, kReduce, kD2t, kGhost };

/// A parsed PKIFMM_INJECT_CORRUPTION spec. `bit` in [0, 63] flips that
/// bit of the first element of the targeted chunk; `bit == -1` ("nan")
/// poisons it with a quiet NaN instead (bit flips on small magnitudes
/// produce huge-but-finite values, so NaN poisoning is the reliable
/// way to exercise the non-finite sentinels).
struct Injection {
  InjectPhase phase = InjectPhase::kNone;
  int rank = 0;
  int bit = -1;
};

/// Parses "<phase>:<rank>:<bit|nan>" with phase in
/// {s2u, reduce, d2t, ghost}. Returns nullopt on malformed input.
std::optional<Injection> parse_injection(const std::string& spec);

/// Overrides the process-wide injection (tests). nullopt clears it.
void set_injection(std::optional<Injection> inj);

/// The active injection: the test override if set, else the parsed
/// PKIFMM_INJECT_CORRUPTION env var (read once), else nullopt.
std::optional<Injection> current_injection();

/// If the active injection targets (phase, rank), corrupts element 0
/// of `chunk` accordingly and returns true. Callers count a hit via
/// the `health.injected` counter so clean-run tests can assert zero.
bool maybe_inject(InjectPhase phase, int rank, std::span<double> chunk);

// ------------------------------------------------------------- drift

/// Per-step sampled-error trend watcher for core::TimeStepper. The
/// first `warmup` observed steps establish a baseline (their mean);
/// afterwards a step warns when its error exceeds
/// `ratio × max(baseline, floor)`. The floor keeps an exactly-zero
/// baseline (e.g. p high enough that sampled error underflows) from
/// flagging harmless noise.
class DriftMonitor {
 public:
  explicit DriftMonitor(double ratio, int warmup = 2,
                        double floor = 1e-14)
      : ratio_(ratio), warmup_(warmup), floor_(floor) {}

  /// Feeds one step's sampled relative error; returns true iff this
  /// step should raise a drift warning.
  bool observe(double err) {
    if (seen_ < warmup_) {
      sum_ += err;
      ++seen_;
      baseline_ = sum_ / static_cast<double>(seen_);
      return false;
    }
    return err > ratio_ * (baseline_ > floor_ ? baseline_ : floor_);
  }

  double baseline() const { return baseline_; }
  int seen() const { return seen_; }

 private:
  double ratio_;
  int warmup_;
  double floor_;
  double sum_ = 0.0;
  double baseline_ = 0.0;
  int seen_ = 0;
};

}  // namespace pkifmm::obs
