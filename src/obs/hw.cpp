#include "obs/hw.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#define PKIFMM_HAVE_PERF 1
#else
#define PKIFMM_HAVE_PERF 0
#endif

namespace pkifmm::obs {

namespace {

#if PKIFMM_HAVE_PERF
int real_open(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid = 0, cpu = -1: this thread, any CPU. No group leader — each
  // event stands alone so one unsupported event (LLC misses on some
  // VMs) does not take the others down.
  const long fd =
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL);
  return static_cast<int>(fd);
}
#else
int real_open(std::uint32_t, std::uint64_t) {
  errno = ENOSYS;
  return -1;
}
#endif

struct EventDesc {
  std::uint32_t type;
  std::uint64_t config;
  HwField field;
};

#if PKIFMM_HAVE_PERF
constexpr std::uint64_t kL1dReadMiss =
    PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
const EventDesc kEventTable[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, kHwCycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, kHwInstructions},
    {PERF_TYPE_HW_CACHE, kL1dReadMiss, kHwL1dMisses},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, kHwLlcMisses},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, kHwBranchMisses},
};
#else
// Types/configs are opaque to the injected opener; field order matters.
const EventDesc kEventTable[] = {
    {0, 0, kHwCycles},          {0, 1, kHwInstructions},
    {0, 2, kHwL1dMisses},       {0, 3, kHwLlcMisses},
    {0, 4, kHwBranchMisses},
};
#endif

bool env_disables_perf() {
  const char* v = std::getenv("PKIFMM_NO_PERF");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::uint64_t read_fd_value(int fd) {
#if PKIFMM_HAVE_PERF
  std::uint64_t v = 0;
  if (read(fd, &v, sizeof(v)) != static_cast<ssize_t>(sizeof(v))) return 0;
  return v;
#else
  (void)fd;
  return 0;
#endif
}

/// Parses "<key>:   <n> kB" from /proc/self/status; returns bytes or 0.
std::uint64_t proc_status_kb(const char* key) {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/status", "re");
  if (!f) return 0;
  const std::size_t klen = std::strlen(key);
  char line[256];
  std::uint64_t bytes = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, klen) == 0 && line[klen] == ':') {
      bytes = std::strtoull(line + klen + 1, nullptr, 10) * 1024ULL;
      break;
    }
  }
  std::fclose(f);
  return bytes;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

HwCounters::HwCounters(bool allow_perf, OpenFn open_fn) {
  if (!open_fn) open_fn = &real_open;
  if (allow_perf && !env_disables_perf()) {
    static_assert(sizeof(kEventTable) / sizeof(kEventTable[0]) == kEvents);
    for (int i = 0; i < kEvents; ++i) {
      errno = 0;
      const int fd = open_fn(kEventTable[i].type, kEventTable[i].config);
      if (fd >= 0) {
        fds_[i] = fd;
        fields_ |= kEventTable[i].field;
      } else if (i == 0) {
        // The cycles counter is the canary: if it cannot open, no
        // hardware event will (EACCES/EPERM: perf_event_paranoid;
        // ENOSYS/ENOENT: no PMU or seccomp). Record why and stop.
        perf_errno_ = errno;
        break;
      }
    }
  }
  source_ = fields_ ? Source::kPerf : Source::kFallback;
  fields_ |= kHwFaults;  // rusage works everywhere
}

HwCounters::~HwCounters() {
#if PKIFMM_HAVE_PERF
  for (int fd : fds_)
    if (fd >= 0) close(fd);
#endif
}

HwSample HwCounters::read() const {
  HwSample s;
#if PKIFMM_HAVE_PERF
  if (source_ == Source::kPerf) {
    std::uint64_t* slots[kEvents] = {&s.cycles, &s.instructions,
                                     &s.l1d_misses, &s.llc_misses,
                                     &s.branch_misses};
    for (int i = 0; i < kEvents; ++i)
      if (fds_[i] >= 0) *slots[i] = read_fd_value(fds_[i]);
  }
  rusage ru{};
  if (getrusage(RUSAGE_THREAD, &ru) == 0) {
    s.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    s.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    s.ctx_switches =
        static_cast<std::uint64_t>(ru.ru_nvcsw + ru.ru_nivcsw);
  }
#endif
  return s;
}

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS"); }

std::uint64_t peak_rss_bytes() {
  std::uint64_t b = proc_status_kb("VmHWM");
#if defined(__linux__)
  if (b == 0) {
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0)
      b = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024ULL;  // kB on Linux
  }
#endif
  return b;
}

}  // namespace pkifmm::obs
