#pragma once
/// \file aggregate.hpp
/// \brief Cross-rank aggregation: per-rank RankMetrics snapshots ->
/// one summary.json ("pkifmm.summary.v1"), plus the regression gate
/// that compares two summaries.
///
/// The paper's headline evidence is cross-rank: Table II is Max/Avg
/// per phase across 65K processes, Fig. 5 is per-rank flop variance,
/// and the Algorithm 2/3 claims are about traffic *shape*. A single
/// rank's metrics.json cannot show any of that, so this layer joins
/// the per-rank tables into one document:
///
///   {
///     "schema": "pkifmm.summary.v1",
///     "nranks": <int>,              // ranks per run (max across runs)
///     "nruns": <int>,               // merged runs (1 for a plain run)
///     "bench": "<name>",            // "" unless a bench wrote it
///     "metrics": {                  // every counter, stats across ranks
///       "<counter>": { "min", "max", "avg", "stddev", "sum", "count",
///                      "imbalance" }, ...
///     },
///     "phases": {                   // per-phase cross-rank breakdown
///       "<phase>": {
///         "wall":  { ...stats... }, // time.<phase>.wall per rank
///         "cpu":   { ...stats... },
///         "flops": { ...stats... },
///         "msgs_sent":  { ...stats... },
///         "bytes_sent": { ...stats... },
///         "critical_path": <s>,       // cross-rank span makespan
///         "overlap_efficiency": <x>,  // busy / (nranks * makespan)
///         // present only for --flow-trace runs (obs/flow.hpp):
///         "comm_wait": { ...stats... },  // blocked-recv s per rank
///         "slack": { ...stats... },      // makespan - rank busy
///         "decomp": { "compute", "comm_wait", "pool_idle", "wall" },
///         "critical_path_graph": <s>,    // true cross-rank dep chain
///         "critical_path_graph_compute": <s>,
///         "critical_path_graph_transfer": <s>
///       }, ...
///     },
///     "comm_matrix": {              // dense per-phase traffic matrices
///       "<phase>": { "msgs":  [[...p x p...]],
///                    "bytes": [[...p x p...]] }, ...
///     },
///     "flow": {                     // only for --flow-trace runs
///       "matched", "unmatched_sends", "unmatched_recvs",
///       "late_sender", "late_receiver", "events", "dropped", "probes",
///       "pairs": [ { "src", "dst", "msgs", "bytes",
///                    "late_sender_msgs", "wait_seconds",
///                    "latency_p50", "latency_p95", "latency_max" } ]
///     }
///   }
///
/// Flow-derived pieces (see obs/flow.hpp): "decomp" splits the phase's
/// summed rank wall time into thread-CPU compute, measured blocked-recv
/// comm_wait, and the pool_idle residual — the three sum to "wall"
/// exactly by construction. "critical_path_graph" replaces the
/// epoch-aligned makespan heuristic with a backward walk over the
/// cross-rank graph of spans + binding message edges (a receive that
/// provably waited on a late sender hops the path to that sender), and
/// splits the path into compute and in-flight transfer legs. The
/// legacy "critical_path" makespan stays for baseline compatibility.
///
/// Sources, per phase:
///  - wall/cpu come from the canonical `time.<phase>.*` counters when
///    any rank has them, else from that rank's spans named `<phase>`
///    (this is how the trace-only roots "setup"/"eval" get totals);
///    flops/msgs/bytes fall back the same way. Ranks missing a counter
///    contribute 0 — imbalance therefore reflects ranks that did no
///    work in a phase, exactly like the paper's Max/Avg columns.
///  - critical_path is the cross-rank makespan of the phase's spans:
///    max over ranks of absolute span end minus min of absolute span
///    start, with per-rank recorder epochs ("obs.epoch" gauge) added
///    back so the timelines align. overlap_efficiency is the fraction
///    of the p * makespan window the ranks spent inside the phase —
///    1.0 means perfectly overlapped, 1/p means fully serialized.
///  - comm_matrix row r is rank r's per-destination send attribution
///    (`commx.<phase>.dst<k>.msgs|bytes` counters), so row sums equal
///    the `comm.<phase>.msgs_sent|bytes_sent` counters and column sums
///    equal what each destination received (the tests pin both).
///
/// Stats use util/stats.hpp's Welford Accumulator; multi-run merging
/// (summarize_runs) folds per-run accumulators with
/// Accumulator::merge(), it never revisits raw samples.

#include <span>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace pkifmm::obs {

inline constexpr const char* kSummarySchema = "pkifmm.summary.v1";

/// Aggregates one run's per-rank snapshots into a summary document.
Json summarize_metrics(const std::vector<RankMetrics>& ranks);

/// Aggregates several runs (e.g. the repetitions a bench records) into
/// one summary: per-metric/per-phase accumulators are merged across
/// runs via Accumulator::merge, critical paths add up (runs execute
/// back to back), and the comm matrices are summed, zero-padded to the
/// largest run's rank count.
Json summarize_runs(const std::string& bench,
                    const std::vector<std::vector<RankMetrics>>& runs);

/// Validates the structural schema of a summary document; throws
/// CheckFailure describing the first violation.
void validate_summary_json(const Json& doc);

/// Validates and writes a summary document.
void write_summary_json(const std::string& path, const Json& summary);

/// Thresholds for the perf-regression gate. Work metrics (flops,
/// msgs, bytes) are exactly reproducible run-over-run, so their ratio
/// bound is tight; wall/cpu time is measured on whatever machine CI
/// lands on, so its bound is loose and phases below the absolute
/// floors are skipped entirely (the machine-tolerance envelope).
struct GateOptions {
  double time_ratio = 1.6;    ///< fresh/baseline bound for wall & cpu
  double work_ratio = 1.25;   ///< bound for flops / msgs / bytes
  /// Ignore time checks below this. Simulated ranks are threads of one
  /// process, so sub-50ms phase walls are dominated by scheduler
  /// contention (2x swings rerun-to-rerun on the same machine); only
  /// phases long enough to average the noise out are gated on time.
  double min_seconds = 5e-2;
  double min_flops = 1e4;     ///< ignore flop checks below this
  double min_msgs = 16;       ///< ignore msg-count checks below this
  double min_bytes = 4096;    ///< ignore byte checks below this
};

/// Compares a fresh summary against a baseline summary. Returns
///   { "ok": bool, "checked": <int>, "violations": [
///       { "phase", "metric", "baseline", "fresh", "ratio", "limit" },
///       ... ] }
/// A phase present in the baseline but absent from the fresh summary
/// is itself a violation (metric "missing"); new phases in the fresh
/// summary are ignored. Throws CheckFailure if either document fails
/// validate_summary_json or the rank counts differ (not comparable).
Json compare_summaries(const Json& fresh, const Json& baseline,
                       const GateOptions& opt = {});

/// Gathers every rank's snapshot to every rank over any communicator
/// providing `allgatherv(std::span<const char>)` (comm::Comm does; the
/// duck typing keeps obs free of a link dependency on comm). Each rank
/// serializes its snapshot as a one-rank metrics.json, the documents
/// travel as bytes, and every rank parses all of them back — exactly
/// the pattern a real MPI build would use with MPI_Allgatherv.
template <class CommT>
std::vector<RankMetrics> gather_metrics(CommT& comm,
                                        const RankMetrics& mine) {
  const std::string text = metrics_to_json({mine}).dump();
  auto per_rank =
      comm.allgatherv(std::span<const char>(text.data(), text.size()));
  std::vector<RankMetrics> out;
  out.reserve(per_rank.size());
  for (const auto& buf : per_rank) {
    auto parsed = metrics_from_json(
        Json::parse(std::string(buf.begin(), buf.end())));
    PKIFMM_CHECK_MSG(parsed.size() == 1,
                     "gather_metrics: peer sent " << parsed.size()
                                                  << " rank entries");
    out.push_back(std::move(parsed.front()));
  }
  return out;
}

}  // namespace pkifmm::obs
