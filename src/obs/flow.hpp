#pragma once
/// \file flow.hpp
/// \brief Per-message flow tracing and wait-state attribution.
///
/// A blocked `Comm::recv` is invisible to the span tracer: the time is
/// charged to whatever phase span happens to be open, and nothing says
/// *which* message the rank was waiting for or *who* was late. The
/// FlowRecorder closes that gap. When enabled (FmmOptions::flow_trace /
/// `--flow-trace`), the comm layer reports every point-to-point message
/// here — sends at enqueue, receives with (block-begin, dequeue)
/// timestamps and whether the receive actually waited — into a
/// preallocated ring. Nothing on the hot path allocates; when the ring
/// is full, new events are dropped and counted (`flow.dropped`).
///
/// The recorded events become three things downstream:
///  - Chrome trace *flow events* (`"ph":"s"/"f"`) that draw send→recv
///    arrows across rank lanes in Perfetto (obs/export.hpp), plus
///    `wait.<phase>` slices for every blocked receive.
///  - First-class `wait.<phase>.*` counters (seconds / blocked / recvs
///    / max_seconds), accumulated per cost-tracker phase at record
///    time, so summaries can decompose phase wall time into compute,
///    communication wait, and residual pool idle.
///  - Matched send/recv pairs in obs::aggregate: the k-th send from
///    (src, dst, tag) pairs with the k-th receive — exact, because the
///    fabric delivers per-(src, dst, tag) in FIFO order — giving
///    per-pair latency percentiles, late-sender classification, and
///    the message edges of the cross-rank critical-path graph.
///
/// Sequence numbers are NOT assigned on the hot path (collective tags
/// are fresh per call, so a per-(peer, tag) counter map would allocate
/// per message). The ring keeps events in record order; seqs are
/// assigned by occurrence counting when the ring is folded out
/// (fold_into / publish), which is equivalent and free at record time.
///
/// Ownership/lifetime contract: whoever binds a FlowRecorder into a
/// CostTracker (core::ParallelFmm when flow_trace is on) must publish()
/// it into the rank's Recorder and unbind it *before* the rank function
/// returns — the recorder outlives the rank fn, the FlowRecorder need
/// not. Mid-run snapshots (comm::snapshot_with_counters) fold a live,
/// not-yet-published FlowRecorder into the snapshot copy without
/// mutating it, so publishing later never double-counts.
///
/// FlowRecorder is NOT thread-safe, mirroring Recorder: each simulated
/// rank owns its own.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pkifmm::obs {

/// Per-rank message-flow ring + wait accumulators. See file comment.
class FlowRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  /// `epoch` is the owning rank Recorder's epoch() so flow timestamps
  /// live on the same rank-relative timeline as span starts (and get
  /// re-absolutized through the same "obs.epoch" gauge downstream).
  explicit FlowRecorder(std::size_t capacity = kDefaultCapacity,
                        double epoch = 0.0);

  /// Seconds since the bound epoch (same clock as span timestamps).
  double now() const { return wall_seconds() - epoch_; }
  double epoch() const { return epoch_; }

  /// Switches the phase new events are attributed to. Cold path (called
  /// from CostTracker::set_phase, a handful of times per run): interning
  /// a new phase may allocate; re-setting a known one does not.
  void set_phase(const std::string& name);

  // --- hot path: no allocation past construction ---------------------
  /// A point-to-point send, stamped at call time (call before the
  /// fabric enqueue so latency = t_recv_dequeue - t_send stays >= 0).
  void on_send(int dest, int tag, std::int64_t bytes);
  /// A completed receive. `t_block_begin` is now() taken before the
  /// fabric call, `t_done` after it; `blocked` is whether the matching
  /// queue was empty on entry (the receive actually waited).
  void on_recv(int source, int tag, std::int64_t bytes,
               double t_block_begin, double t_done, bool blocked);
  /// A non-blocking probe (counted, not ringed).
  void on_probe() { ++probes_; }

  // --- introspection -------------------------------------------------
  std::size_t events() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t sends() const { return sends_; }
  std::uint64_t recvs() const { return recvs_; }
  std::uint64_t probes() const { return probes_; }
  bool published() const { return published_; }

  /// Pure read: folds the ring (with seqs assigned), the phase table,
  /// and the flow/wait counters into `m`. Used for mid-run snapshots;
  /// does not mark the recorder published.
  void fold_into(RankMetrics& m) const;

  /// One-shot end-of-life publish into the owning rank's Recorder:
  /// same data as fold_into, then marks this recorder published so a
  /// later snapshot of `rec` won't fold it a second time.
  void publish(Recorder& rec);

 private:
  struct WaitAccum {
    double seconds = 0.0;      ///< total blocked time
    double max_seconds = 0.0;  ///< worst single wait
    std::uint64_t recvs = 0;   ///< all receives in this phase
    std::uint64_t blocked = 0; ///< receives that actually waited
  };

  /// Ring copy with per-(direction, peer, tag) seqs assigned.
  std::vector<FlowEvent> with_seq() const;

  template <class AddFn, class MaxFn>
  void fold_counters(AddFn&& add, MaxFn&& maxi) const;

  double epoch_;
  std::int32_t cur_phase_ = 0;
  std::vector<std::string> phases_;  ///< interned phase names
  std::vector<WaitAccum> waits_;     ///< parallel to phases_
  std::vector<FlowEvent> ring_;      ///< capacity reserved up front
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t recvs_ = 0;
  bool published_ = false;
};

}  // namespace pkifmm::obs
