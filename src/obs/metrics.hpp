#pragma once
/// \file metrics.hpp
/// \brief Process-wide observability: metrics registry + span tracer.
///
/// The paper's evidence is per-phase, per-rank accounting (Table II's
/// Max/Avg time-and-flops breakdown, Fig. 5's per-rank flop variance,
/// the message/round counts behind the hypercube reduce-scatter claim).
/// obs is the single substrate all of that reports into:
///
///  - Recorder: one per simulated rank. Counters, gauges, per-phase
///    histograms, and a span-based tracer. Every completed span records
///    (name, start, wall, cpu, flops, msgs, bytes, parent) where the
///    flop/msg/byte attribution is the delta of the rank totals between
///    span open and close — so nested spans never double-count.
///  - Registry: process-wide owner of Recorders with per-rank scoping.
///    comm::Runtime binds one Recorder per rank; standalone code can use
///    Registry::global().
///
/// Exporters (export.hpp) turn Recorder snapshots into a flat
/// metrics.json and a Chrome trace_event JSON.
///
/// Recorder is intentionally NOT thread-safe: each simulated rank owns
/// its Recorder, mirroring PhaseTimer/FlopCounter. Registry's recorder
/// lookup is mutex-guarded so ranks can bind concurrently.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hw.hpp"
#include "util/check.hpp"

namespace pkifmm::obs {

/// Thread-CPU seconds for the calling thread (excludes blocked time).
/// Lives here so obs has no dependency on util's timer; util forwards.
double thread_cpu_seconds();

/// Monotonic wall-clock seconds since an arbitrary process epoch.
double wall_seconds();

/// Power-of-two-bucketed histogram for nonnegative samples (message
/// sizes, per-leaf interaction counts, span durations in microseconds).
/// Bucket b counts samples in (2^(b-1), 2^b]; bucket 0 counts samples
/// <= 1.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  const std::uint64_t* buckets() const { return buckets_; }

  /// Elementwise merge (for cross-rank aggregation).
  void merge(const Histogram& other);

  /// Rebuilds a histogram from serialized parts (export round-trip).
  static Histogram from_parts(std::uint64_t count, double sum, double min,
                              double max,
                              const std::uint64_t (&buckets)[kBuckets]);

  bool operator==(const Histogram& other) const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
};

/// One completed span: a named interval on one rank, with the work and
/// communication attributed to it (deltas of the rank totals between
/// open and close, so a parent's numbers include its children's).
struct SpanEvent {
  std::string name;
  double start = 0.0;        ///< seconds since the recorder's epoch
  double wall = 0.0;         ///< inclusive wall seconds
  double cpu = 0.0;          ///< inclusive thread-CPU seconds
  std::uint64_t flops = 0;   ///< flops reported while the span was open
  std::uint64_t msgs = 0;    ///< messages sent while the span was open
  std::uint64_t bytes = 0;   ///< bytes sent while the span was open
  std::int32_t parent = -1;  ///< index into the same spans vector
  std::int32_t depth = 0;    ///< 0 = top-level
  std::int32_t tid = 0;      ///< intra-rank thread: 0 = rank thread,
                             ///< k >= 1 = TaskPool worker lane k
};

/// One per-message flow record (obs/flow.hpp produces these). Sends
/// and receives are recorded on their own rank; the aggregator matches
/// the k-th send from (src, dst, tag) with the k-th receive — the
/// fabric's non-overtaking rule makes that pairing exact — so a
/// message's flow id is (src, dst, tag, seq).
struct FlowEvent {
  enum Kind : std::int32_t {
    kSend = 0,         ///< enqueue on the sender (never blocks)
    kRecv = 1,         ///< receive that found the message queued
    kRecvBlocked = 2,  ///< receive that waited on the condvar
  };
  std::int32_t kind = kSend;
  std::int32_t peer = 0;   ///< dst for sends, src for recvs
  std::int32_t tag = 0;
  std::int32_t seq = -1;   ///< per-(direction, peer, tag) ordinal;
                           ///< -1 until FlowRecorder folds the ring
  std::int32_t phase = 0;  ///< index into RankMetrics::flow_phases
  std::int64_t bytes = 0;
  double t0 = 0.0;  ///< send: enqueue; recv: block begin (rel. epoch)
  double t1 = 0.0;  ///< send: == t0; recv: dequeue complete
};

/// Copyable snapshot of everything one rank recorded.
struct RankMetrics {
  int rank = 0;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  std::vector<SpanEvent> spans;
  std::vector<FlowEvent> flows;          ///< per-message trace (flow on)
  std::vector<std::string> flow_phases;  ///< interned phase names

  /// Sum of wall seconds over the direct children of span `i`. The
  /// tracer invariant (asserted in tests) is child_wall_sum(i) <=
  /// spans[i].wall up to scheduler noise.
  double child_wall_sum(std::size_t i) const;
};

/// Per-rank recording surface. All mutation goes through here.
class Recorder {
 public:
  explicit Recorder(int rank = 0) : epoch_(wall_seconds()) {
    metrics_.rank = rank;
  }

  int rank() const { return metrics_.rank; }

  /// Wall-clock offset (process epoch -> this recorder's span epoch).
  /// Span starts are relative to this; cross-rank aggregation adds it
  /// back (published as the "obs.epoch" gauge) so spans from recorders
  /// created at different times align on one absolute timeline.
  double epoch() const { return epoch_; }

  // --- metrics -----------------------------------------------------
  void counter_add(const std::string& name, double v = 1.0) {
    metrics_.counters[name] += v;
  }
  double counter(const std::string& name) const {
    auto it = metrics_.counters.find(name);
    return it == metrics_.counters.end() ? 0.0 : it->second;
  }
  void gauge_set(const std::string& name, double v) {
    metrics_.gauges[name] = v;
  }
  void observe(const std::string& name, double v) {
    metrics_.histograms[name].observe(v);
  }
  /// Stable histogram handle for hot paths (per-message observes): the
  /// pointer stays valid for the recorder's lifetime.
  Histogram* histogram(const std::string& name) {
    return &metrics_.histograms[name];
  }

  // --- span attribution feeds --------------------------------------
  /// Reported by FlopCounter; attributed to every open span.
  void add_flops(std::uint64_t n) { flops_total_ += n; }
  /// Reported by comm::CostTracker on every send.
  void add_sent(std::uint64_t msgs, std::uint64_t bytes) {
    msgs_total_ += msgs;
    bytes_total_ += bytes;
  }
  std::uint64_t flops_total() const { return flops_total_; }

  // --- hardware / memory sampling ----------------------------------
  /// Binds a thread-scoped HwCounters (owned by the caller, must
  /// outlive the binding; unbind with nullptr). While bound, every
  /// span close folds the counter deltas across the span into flat
  /// counters `hw.<span-name>.<event>` and the process peak-RSS
  /// advance into `mem.<span-name>.peak_rss_delta_bytes`, and one
  /// `hw.ranks_perf` or `hw.ranks_fallback` tick plus the
  /// `hw.perf_errno` gauge record which source this rank got. Call
  /// once per rank run, from the thread that owns both the recorder
  /// and the HwCounters (comm::Runtime does).
  void bind_hw(HwCounters* hw) {
    hw_ = hw;
    if (!hw) return;
    counter_add(hw->source() == HwCounters::Source::kPerf
                    ? "hw.ranks_perf"
                    : "hw.ranks_fallback");
    gauge_set("hw.perf_errno", static_cast<double>(hw->perf_errno()));
  }
  const HwCounters* hw() const { return hw_; }

  // --- tracer ------------------------------------------------------
  /// RAII span. Move-only; closes on destruction unless close() was
  /// called explicitly (which returns the measured durations so a
  /// caller can reuse the single measurement, e.g. PhaseTimer).
  class Span {
   public:
    Span(Recorder& rec, std::string name) : rec_(&rec) {
      idx_ = rec.open_span(std::move(name));
    }
    Span(Span&& other) noexcept : rec_(other.rec_), idx_(other.idx_) {
      other.rec_ = nullptr;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;
    ~Span() {
      if (rec_) rec_->close_span(idx_);
    }

    struct Durations {
      double wall = 0.0;
      double cpu = 0.0;
    };
    /// Closes now and returns the span's wall/cpu durations.
    Durations close() {
      PKIFMM_CHECK(rec_ != nullptr);
      const SpanEvent& e = rec_->close_span(idx_);
      rec_ = nullptr;
      return {e.wall, e.cpu};
    }

   private:
    Recorder* rec_;
    std::size_t idx_ = 0;
  };

  Span span(std::string name) { return Span(*this, std::move(name)); }

  /// Appends an externally measured span (e.g. a TaskPool worker burst
  /// folded in after the fact). The event is stored as given — no
  /// attribution deltas, no parent linking — so callers must set start
  /// relative to epoch() themselves. Call from the owning rank thread.
  void record_span(SpanEvent e) { metrics_.spans.push_back(std::move(e)); }

  /// Appends externally recorded flow events (obs::FlowRecorder
  /// publishes its ring here at end-of-life). `phases` is the
  /// producer's interning table; phase ids are remapped onto this
  /// recorder's table so several producers can publish into one rank.
  void record_flows(const std::vector<FlowEvent>& flows,
                    const std::vector<std::string>& phases);

  // --- snapshot ----------------------------------------------------
  const RankMetrics& metrics() const { return metrics_; }
  /// Copy of the snapshot; open spans are not included.
  RankMetrics snapshot() const { return metrics_; }

  void clear() {
    metrics_.counters.clear();
    metrics_.gauges.clear();
    metrics_.histograms.clear();
    metrics_.spans.clear();
    metrics_.flows.clear();
    metrics_.flow_phases.clear();
    PKIFMM_CHECK_MSG(open_.empty(), "clear() with open spans");
    flops_total_ = 0;
    msgs_total_ = 0;
    bytes_total_ = 0;
  }

 private:
  friend class Span;

  struct OpenSpan {
    std::size_t idx;        ///< slot in metrics_.spans
    double cpu_start;
    std::uint64_t flops0, msgs0, bytes0;
    HwSample hw0;           ///< populated only while hw_ is bound
    std::uint64_t rss0 = 0; ///< peak_rss_bytes() at open (hw_ bound)
  };

  std::size_t open_span(std::string name);
  const SpanEvent& close_span(std::size_t idx);
  void fold_hw(const std::string& name, const OpenSpan& o);

  RankMetrics metrics_;
  std::vector<OpenSpan> open_;
  HwCounters* hw_ = nullptr;
  double epoch_;
  std::uint64_t flops_total_ = 0;
  std::uint64_t msgs_total_ = 0;
  std::uint64_t bytes_total_ = 0;
};

/// Process-wide registry of per-rank Recorders. One Registry per SPMD
/// execution (comm::Runtime creates one per run); Registry::global()
/// serves code outside a Runtime.
class Registry {
 public:
  Registry() = default;

  /// The recorder scoped to `rank`, created on first use. The returned
  /// reference stays valid for the registry's lifetime.
  Recorder& recorder(int rank);

  /// Snapshot of every rank seen so far, ordered by rank.
  std::vector<RankMetrics> snapshot() const;

  /// Drops all recorders (e.g. between bench repetitions).
  void reset();

  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<int, std::unique_ptr<Recorder>> recorders_;
};

}  // namespace pkifmm::obs
