#pragma once
/// \file json.hpp
/// \brief Minimal JSON value type with serialization and parsing.
///
/// The observability layer exports metrics.json and Chrome trace_event
/// files, and the tests round-trip them (write -> parse -> compare).
/// The container has no JSON dependency baked in, so this implements
/// the small subset pkifmm needs: objects, arrays, strings, doubles,
/// 64-bit integers, booleans and null. Numbers are written with enough
/// precision that a parse of our own output is lossless.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace pkifmm::obs {

/// A JSON document node. Objects preserve key order via a side vector
/// so exported files are deterministic and diffable run-over-run.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(std::uint64_t v) : type_(Type::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  bool as_bool() const {
    PKIFMM_CHECK(type_ == Type::kBool);
    return bool_;
  }
  std::int64_t as_int() const {
    PKIFMM_CHECK(type_ == Type::kInt);
    return int_;
  }
  double as_double() const {
    PKIFMM_CHECK(is_number());
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const {
    PKIFMM_CHECK(type_ == Type::kString);
    return str_;
  }

  /// Array access.
  void push_back(Json v) {
    PKIFMM_CHECK(type_ == Type::kArray);
    items_.push_back(std::move(v));
  }
  std::size_t size() const {
    PKIFMM_CHECK(type_ == Type::kArray || type_ == Type::kObject);
    return type_ == Type::kArray ? items_.size() : keys_.size();
  }
  const Json& at(std::size_t i) const {
    PKIFMM_CHECK(type_ == Type::kArray && i < items_.size());
    return items_[i];
  }
  const std::vector<Json>& items() const {
    PKIFMM_CHECK(type_ == Type::kArray);
    return items_;
  }

  /// Object access. set() overwrites an existing key in place.
  void set(const std::string& key, Json v);
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;
  const std::vector<std::string>& keys() const {
    PKIFMM_CHECK(type_ == Type::kObject);
    return keys_;
  }

  /// Serializes to a string; indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parses a JSON document; throws CheckFailure on malformed input.
  static Json parse(const std::string& text);

  /// Structural equality (ints compare equal to numerically-equal
  /// doubles so round-trips through text compare clean).
  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                // array elements
  std::vector<std::string> keys_;          // object key order
  std::map<std::string, Json> fields_;     // object storage
};

/// Writes `j` to `path` (pretty-printed); throws CheckFailure on I/O
/// failure.
void write_json_file(const std::string& path, const Json& j, int indent = 2);

/// Reads and parses a JSON file; throws CheckFailure on I/O or parse
/// failure.
Json read_json_file(const std::string& path);

}  // namespace pkifmm::obs
