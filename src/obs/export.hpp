#pragma once
/// \file export.hpp
/// \brief Exporters: RankMetrics snapshots -> metrics.json / Chrome
/// trace_event JSON, plus the inverse parse for round-trip testing.
///
/// Schema "pkifmm.metrics.v1" (flat machine-readable metrics):
///
///   {
///     "schema": "pkifmm.metrics.v1",
///     "nranks": <int>,
///     "ranks": [
///       { "rank": <int>,
///         "counters":   { "<name>": <double>, ... },
///         "gauges":     { "<name>": <double>, ... },
///         "histograms": { "<name>": { "count", "sum", "min", "max",
///                                     "buckets": [[bucket, count], ...] } },
///         "spans": [ { "name", "start", "wall", "cpu", "flops",
///                      "msgs", "bytes", "parent", "depth" }, ... ],
///         "flows": [ [kind, peer, tag, seq, phase, bytes, t0, t1], ... ],
///         "flow_phases": [ "<phase>", ... ] },
///       ...
///     ],
///     "totals": { "counters": { "<name>": <sum across ranks> } }
///   }
///
/// "flows"/"flow_phases" are present only when the rank recorded flow
/// events (--flow-trace, obs/flow.hpp); each flow row is the compact
/// array form of obs::FlowEvent (kind 0=send, 1=recv, 2=blocked recv;
/// phase indexes flow_phases; t0/t1 are seconds relative to the
/// recorder epoch).
///
/// Canonical counter names written by comm::Runtime for every rank:
///   time.<phase>.wall / time.<phase>.cpu     seconds (PhaseTimer)
///   flops.<phase>                            analytic flops (FlopCounter)
///   comm.<phase>.msgs_sent / .bytes_sent     per-phase sends (CostTracker)
///   comm.<phase>.msgs_recv / .bytes_recv
///   commx.<phase>.dst<k>.msgs / .bytes       sends to rank k in <phase>
///                                            (sparse; obs::summarize_metrics
///                                            assembles the dense matrix)
///   coll.<collective>.calls / .rounds / .msgs / .bytes
///
/// Hardware/memory counters folded at span close while an
/// obs::HwCounters is bound (obs/hw.hpp; names match span names
/// EXACTLY and are inclusive of child spans — never prefix-sum them):
///   hw.<phase>.cycles / .instructions        perf_event_open, only when
///   hw.<phase>.l1d_misses / .llc_misses      the rank has perf access
///   hw.<phase>.branch_misses                 (absent under fallback)
///   hw.<phase>.minor_faults / .major_faults  getrusage(RUSAGE_THREAD),
///   hw.<phase>.ctx_switches                  always present
///   mem.<phase>.peak_rss_delta_bytes         process VmHWM advance while
///                                            the phase was open
///   hw.ranks_perf / hw.ranks_fallback        1 per rank, by source
/// and the gauges
///   obs.epoch                                recorder epoch on the process
///                                            wall clock (aligns per-rank
///                                            span timelines)
///   hw.perf_errno                            errno of the failed
///                                            perf_event_open (0 = live)
///   mem.peak_rss_bytes                       process VmHWM at rank exit
///   mem.let.*, mem.eval.*                    structure footprints
///                                            (DESIGN.md §5b)
///
/// The Chrome trace export ("trace_event" JSON-array format, load via
/// chrome://tracing or Perfetto) maps rank -> pid (with process_name /
/// thread_name metadata events naming each row "rank N") and emits one
/// complete ("ph":"X") event per span with flops/msgs/bytes in args.
/// Because the pid carries the rank, per-rank trace files written by
/// separate processes concatenate into one merged timeline. When flow
/// events were recorded, every message additionally becomes a flow-
/// event pair — "ph":"s" on the sender at enqueue, "ph":"f","bp":"e"
/// on the receiver at dequeue, both carrying the stable string id
/// "f:<src>:<dst>:<tag>:<seq>" — so Perfetto draws send→recv arrows
/// across the rank rows, and every blocked receive becomes a
/// "wait.<phase>" slice on the receiver's rank-thread row.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace pkifmm::obs {

inline constexpr const char* kMetricsSchema = "pkifmm.metrics.v1";

/// Serializes snapshots into the metrics.json schema above.
Json metrics_to_json(const std::vector<RankMetrics>& ranks);

/// Parses a metrics.json document back into snapshots (round-trip
/// inverse of metrics_to_json; throws CheckFailure on schema errors).
std::vector<RankMetrics> metrics_from_json(const Json& doc);

/// Validates the structural schema of a metrics.json document; throws
/// CheckFailure with a description of the first violation.
void validate_metrics_json(const Json& doc);

/// Chrome trace_event document ({"traceEvents": [...]}) for the spans
/// (+ flow arrows and wait slices when flow events are present).
Json chrome_trace_json(const std::vector<RankMetrics>& ranks);

/// Merges per-run Chrome trace documents into one timeline: run k's
/// pids are shifted by k * stride where stride = max pids-per-run over
/// ALL runs (so pids can never collide, whatever the rank count — the
/// PR 2 fixed stride overflowed into the next run's pid range when
/// ranks >= stride), flow-event ids get a "r<k>:" prefix so arrows
/// never cross runs, and process_name metadata is rewritten to
/// "run<k> rank N".
Json merge_chrome_traces(const std::vector<Json>& runs);

/// Convenience file writers (schema-validated before writing).
void write_metrics_json(const std::string& path,
                        const std::vector<RankMetrics>& ranks);
void write_chrome_trace(const std::string& path,
                        const std::vector<RankMetrics>& ranks);

}  // namespace pkifmm::obs
