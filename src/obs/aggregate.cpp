#include "obs/aggregate.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "util/stats.hpp"

namespace pkifmm::obs {

namespace {

// ------------------------------------------------------------ helpers

Json stats_json(const Accumulator& a) {
  Summary s;
  s.count = a.count();
  if (a.count() > 0) {
    s.min = a.min();
    s.max = a.max();
    s.avg = a.mean();
    s.stddev = a.stddev();
  }
  Json out = Json::object();
  out.set("min", s.min);
  out.set("max", s.max);
  out.set("avg", s.avg);
  out.set("stddev", s.stddev);
  out.set("sum", s.avg * static_cast<double>(s.count));
  out.set("count", static_cast<std::int64_t>(s.count));
  // Omitted (not 1.0) when undefined — zero-wall phases and all-zero
  // metrics have no meaningful max/avg ratio (see Summary::has_imbalance).
  if (s.has_imbalance()) out.set("imbalance", s.imbalance());
  return out;
}

double counter_of(const RankMetrics& rm, const std::string& name) {
  auto it = rm.counters.find(name);
  return it == rm.counters.end() ? 0.0 : it->second;
}

/// Parses "commx.<phase>.dst<k>.msgs|bytes"; returns false for
/// anything else.
bool parse_commx(const std::string& name, std::string& phase, int& dst,
                 bool& is_msgs) {
  if (!name.starts_with("commx.")) return false;
  std::string rest = name.substr(6);
  if (rest.ends_with(".msgs")) {
    is_msgs = true;
    rest.resize(rest.size() - 5);
  } else if (rest.ends_with(".bytes")) {
    is_msgs = false;
    rest.resize(rest.size() - 6);
  } else {
    return false;
  }
  const std::size_t pos = rest.rfind(".dst");
  if (pos == std::string::npos) return false;
  phase = rest.substr(0, pos);
  const std::string num = rest.substr(pos + 4);
  if (num.empty()) return false;
  dst = 0;
  for (char c : num) {
    if (c < '0' || c > '9') return false;
    dst = dst * 10 + (c - '0');
  }
  return true;
}

/// Per-phase cross-run aggregation state.
struct PhaseAgg {
  Accumulator wall, cpu, flops, msgs, bytes;
  double busy = 0.0;      ///< Σ span wall over ranks and runs
  double makespan = 0.0;  ///< Σ per-run cross-rank makespan
  bool has_span = false;
  // Flow-derived extensions (runs with --flow-trace only):
  Accumulator comm_wait;  ///< per-rank blocked-recv seconds in phase
  Accumulator slack;      ///< per-rank makespan - busy (span phases)
  double d_compute = 0.0; ///< Σ over ranks/runs: decomposition parts
  double d_wait = 0.0;
  double d_idle = 0.0;
  double d_wall = 0.0;
  bool has_decomp = false;
  double graph = 0.0;           ///< Σ per-run graph critical path
  double graph_compute = 0.0;   ///< ... its on-rank compute part
  double graph_transfer = 0.0;  ///< ... its message-transfer part
  bool has_graph = false;
};

/// Per-rank wait seconds attributed to `phase`, from the flat
/// `wait.<q>.seconds` counters: exact name plus children
/// ("wait.<phase>.<leaf>.seconds"). Each blocked receive is recorded
/// exactly once, under the cost-tracker phase active at the time, so
/// the prefix sum never double-counts (unlike hw.*).
double wait_seconds_of(const RankMetrics& rm, const std::string& phase) {
  const std::string exact = "wait." + phase + ".seconds";
  double total = 0.0;
  for (const auto& [name, v] : rm.counters) {
    if (!name.starts_with("wait.") || !name.ends_with(".seconds") ||
        name.ends_with(".max_seconds"))
      continue;
    if (name == exact) {
      total += v;
      continue;
    }
    const std::string q = name.substr(5, name.size() - 13);
    if (q.size() > phase.size() &&
        q.compare(0, phase.size(), phase) == 0 && q[phase.size()] == '.')
      total += v;
  }
  return total;
}

// ----------------------------------------------- flow matching / graph

/// One send/recv pair on the absolute (epoch-aligned) timeline.
struct MatchedMsg {
  int src = 0, dst = 0;
  double bytes = 0.0;
  double t_send = 0.0;   ///< sender enqueue
  double t_block = 0.0;  ///< receiver block begin
  double t_recv = 0.0;   ///< receiver dequeue complete
  bool blocked = false;  ///< the receive actually waited
  /// A "binding" edge constrains the receiver: it was blocked AND the
  /// send happened after the receiver started waiting (late sender) —
  /// the Scalasca-style condition under which the sender is on the
  /// receiver's critical path.
  bool binding() const { return blocked && t_send > t_block; }
};

struct FlowMatch {
  std::vector<MatchedMsg> msgs;
  std::size_t unmatched_sends = 0;  ///< e.g. receiver's ring dropped it
  std::size_t unmatched_recvs = 0;
  bool any = false;  ///< some rank recorded flow data this run
};

/// Joins the k-th send from (src, dst, tag) with the k-th receive —
/// the (src, dst, tag, seq) flow id; exact because the fabric is FIFO
/// per (src, dst, tag) — after restoring absolute time via each rank's
/// "obs.epoch" gauge.
FlowMatch match_flows(const std::vector<RankMetrics>& ranks) {
  FlowMatch out;
  struct SendRec {
    double t_send, bytes;
  };
  struct RecvRec {
    double t_block, t_recv;
    bool blocked;
  };
  std::map<std::array<int, 4>, SendRec> sends;
  std::map<std::array<int, 4>, RecvRec> recvs;
  for (const RankMetrics& rm : ranks) {
    if (!rm.flows.empty() || !rm.flow_phases.empty()) out.any = true;
    auto eit = rm.gauges.find("obs.epoch");
    const double epoch = eit == rm.gauges.end() ? 0.0 : eit->second;
    for (const FlowEvent& e : rm.flows) {
      if (e.kind == FlowEvent::kSend)
        sends[{rm.rank, e.peer, e.tag, e.seq}] =
            SendRec{epoch + e.t0, static_cast<double>(e.bytes)};
      else
        recvs[{e.peer, rm.rank, e.tag, e.seq}] = RecvRec{
            epoch + e.t0, epoch + e.t1, e.kind == FlowEvent::kRecvBlocked};
    }
  }
  std::size_t matched = 0;
  for (const auto& [key, s] : sends) {
    auto it = recvs.find(key);
    if (it == recvs.end()) {
      ++out.unmatched_sends;
      continue;
    }
    ++matched;
    MatchedMsg m;
    m.src = key[0];
    m.dst = key[1];
    m.bytes = s.bytes;
    m.t_send = s.t_send;
    m.t_block = it->second.t_block;
    m.t_recv = it->second.t_recv;
    m.blocked = it->second.blocked;
    out.msgs.push_back(m);
  }
  out.unmatched_recvs = recvs.size() - matched;
  return out;
}

/// Absolute time window one rank spent inside a phase (its spans of
/// that exact name).
struct Interval {
  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -std::numeric_limits<double>::infinity();
  bool any = false;
};

struct GraphPath {
  double compute = 0.0;
  double transfer = 0.0;
  bool valid = false;
};

/// Backward critical-path walk over the cross-rank span+message graph:
/// start from the rank that ends the phase last, walk back through the
/// latest binding receive each time (the message whose late sender the
/// rank was provably waiting on), hopping to the sender at its send
/// time. Every hop decomposes the path into on-rank compute and
/// in-flight transfer. t_cur strictly decreases (t_send < t_recv <=
/// t_cur), so the walk terminates; the step cap is a belt-and-braces
/// guard against degenerate timestamps.
GraphPath graph_critical_path(
    const std::map<int, std::vector<const MatchedMsg*>>& by_dst,
    const std::vector<Interval>& ivs) {
  GraphPath out;
  int cur = -1;
  double t_cur = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ivs.size(); ++i)
    if (ivs[i].any && ivs[i].t1 > t_cur) {
      t_cur = ivs[i].t1;
      cur = static_cast<int>(i);
    }
  if (cur < 0) return out;
  out.valid = true;
  std::size_t msg_total = 0;
  for (const auto& [dst, v] : by_dst) msg_total += v.size();
  for (std::size_t step = 0; step <= msg_total + ivs.size(); ++step) {
    const Interval& iv = ivs[static_cast<std::size_t>(cur)];
    const MatchedMsg* pick = nullptr;
    auto dit = by_dst.find(cur);
    if (dit != by_dst.end()) {
      // Latest binding receive at or before t_cur, inside the phase
      // window (the vectors are sorted by t_recv).
      const auto& v = dit->second;
      auto it = std::upper_bound(
          v.begin(), v.end(), t_cur,
          [](double t, const MatchedMsg* m) { return t < m->t_recv; });
      while (it != v.begin()) {
        --it;
        if ((*it)->t_recv < iv.t0) break;
        if ((*it)->binding()) {
          pick = *it;
          break;
        }
      }
    }
    if (pick == nullptr) {
      out.compute += std::max(0.0, t_cur - iv.t0);
      break;
    }
    out.compute += std::max(0.0, t_cur - pick->t_recv);
    out.transfer += std::max(0.0, pick->t_recv - pick->t_send);
    cur = pick->src;
    t_cur = pick->t_send;
    const Interval& siv = ivs[static_cast<std::size_t>(cur)];
    if (!siv.any || t_cur <= siv.t0) break;  // sender outside the phase
  }
  return out;
}

/// Cross-run (src, dst) pair aggregation for the summary's latency
/// table.
struct PairAgg {
  double msgs = 0.0, bytes = 0.0;
  double late_sender = 0.0;
  double wait_seconds = 0.0;  ///< blocked time this pair inflicted
  std::vector<double> latencies;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(idx)];
}

/// Dense per-phase traffic matrices, grown to the largest rank count.
struct MatrixAgg {
  std::vector<std::vector<double>> msgs, bytes;

  void ensure(std::size_t n) {
    const std::size_t old = msgs.size();
    const std::size_t next = std::max(old, n);
    msgs.resize(next);
    bytes.resize(next);
    for (auto& row : msgs) row.resize(next, 0.0);
    for (auto& row : bytes) row.resize(next, 0.0);
  }
};

Json matrix_json(const std::vector<std::vector<double>>& m) {
  Json rows = Json::array();
  for (const auto& row : m) {
    Json jr = Json::array();
    for (double v : row) jr.push_back(Json(v));
    rows.push_back(std::move(jr));
  }
  return rows;
}

}  // namespace

Json summarize_metrics(const std::vector<RankMetrics>& ranks) {
  return summarize_runs("", {ranks});
}

Json summarize_runs(const std::string& bench,
                    const std::vector<std::vector<RankMetrics>>& runs) {
  std::map<std::string, Accumulator> metric_aggs;
  std::map<std::string, PhaseAgg> phase_aggs;
  std::map<std::string, MatrixAgg> matrices;
  std::size_t nranks = 0;
  bool have_flows = false;
  double fl_matched = 0.0, fl_unmatched_sends = 0.0, fl_unmatched_recvs = 0.0;
  double fl_late_sender = 0.0, fl_late_receiver = 0.0;
  std::map<std::pair<int, int>, PairAgg> pair_aggs;

  for (const std::vector<RankMetrics>& ranks : runs) {
    nranks = std::max(nranks, ranks.size());

    // ---- flow matching (runs traced with --flow-trace only) ---------
    const FlowMatch fm = match_flows(ranks);
    std::map<int, std::vector<const MatchedMsg*>> msgs_by_dst;
    if (fm.any) {
      have_flows = true;
      fl_matched += static_cast<double>(fm.msgs.size());
      fl_unmatched_sends += static_cast<double>(fm.unmatched_sends);
      fl_unmatched_recvs += static_cast<double>(fm.unmatched_recvs);
      for (const MatchedMsg& m : fm.msgs) {
        // Late sender: the send happened after the receiver was already
        // blocked waiting. Anything else — data queued before the
        // receive, or sent before the receiver blocked — is the
        // receiver arriving late (or on time).
        const bool late_sender = m.binding();
        fl_late_sender += late_sender ? 1.0 : 0.0;
        fl_late_receiver += late_sender ? 0.0 : 1.0;
        PairAgg& pa = pair_aggs[{m.src, m.dst}];
        pa.msgs += 1.0;
        pa.bytes += m.bytes;
        pa.late_sender += late_sender ? 1.0 : 0.0;
        if (m.blocked) pa.wait_seconds += m.t_recv - m.t_block;
        pa.latencies.push_back(m.t_recv - m.t_send);
        msgs_by_dst[m.dst].push_back(&m);
      }
      for (auto& [dst, v] : msgs_by_dst)
        std::sort(v.begin(), v.end(),
                  [](const MatchedMsg* a, const MatchedMsg* b) {
                    return a->t_recv < b->t_recv;
                  });
    }

    // ---- flat metric stats: union of counter names, missing -> 0 ----
    std::set<std::string> names;
    for (const RankMetrics& rm : ranks)
      for (const auto& [name, v] : rm.counters) names.insert(name);
    for (const std::string& name : names) {
      if (name.starts_with("commx.")) continue;  // matrix carries these
      Accumulator acc;
      for (const RankMetrics& rm : ranks) acc.add(counter_of(rm, name));
      metric_aggs[name].merge(acc);
    }

    // ---- phase discovery: canonical counters plus span names --------
    std::set<std::string> phases;
    std::set<std::string> counter_phases;
    for (const std::string& name : names) {
      if (name.starts_with("time.") && name.ends_with(".wall")) {
        counter_phases.insert(name.substr(5, name.size() - 10));
      } else if (name.starts_with("flops.")) {
        counter_phases.insert(name.substr(6));
      } else if (name.starts_with("comm.")) {
        const std::size_t dot = name.rfind('.');
        if (dot > 5) counter_phases.insert(name.substr(5, dot - 5));
      }
    }
    phases = counter_phases;
    for (const RankMetrics& rm : ranks)
      for (const SpanEvent& e : rm.spans) phases.insert(e.name);

    for (const std::string& phase : phases) {
      PhaseAgg& agg = phase_aggs[phase];
      const bool from_counters = counter_phases.count(phase) > 0;
      Accumulator wall, cpu, flops, msgs, bytes;
      double t0 = std::numeric_limits<double>::infinity();
      double t1 = -std::numeric_limits<double>::infinity();
      double busy = 0.0;
      bool any_span = false;
      std::vector<Interval> ivs(ranks.size());
      std::vector<double> rank_busy(ranks.size(), 0.0);

      for (std::size_t i = 0; i < ranks.size(); ++i) {
        const RankMetrics& rm = ranks[i];
        double s_wall = 0.0, s_cpu = 0.0, s_flops = 0.0, s_msgs = 0.0,
               s_bytes = 0.0;
        auto eit = rm.gauges.find("obs.epoch");
        const double epoch = eit == rm.gauges.end() ? 0.0 : eit->second;
        for (const SpanEvent& e : rm.spans) {
          if (e.name != phase) continue;
          any_span = true;
          s_wall += e.wall;
          s_cpu += e.cpu;
          s_flops += static_cast<double>(e.flops);
          s_msgs += static_cast<double>(e.msgs);
          s_bytes += static_cast<double>(e.bytes);
          t0 = std::min(t0, epoch + e.start);
          t1 = std::max(t1, epoch + e.start + e.wall);
          Interval& iv = ivs[i];
          iv.any = true;
          iv.t0 = std::min(iv.t0, epoch + e.start);
          iv.t1 = std::max(iv.t1, epoch + e.start + e.wall);
        }
        busy += s_wall;
        rank_busy[i] = s_wall;
        double r_wall, r_cpu;
        if (from_counters) {
          r_wall = counter_of(rm, "time." + phase + ".wall");
          r_cpu = counter_of(rm, "time." + phase + ".cpu");
          wall.add(r_wall);
          cpu.add(r_cpu);
          flops.add(counter_of(rm, "flops." + phase));
          msgs.add(counter_of(rm, "comm." + phase + ".msgs_sent"));
          bytes.add(counter_of(rm, "comm." + phase + ".bytes_sent"));
        } else {
          r_wall = s_wall;
          r_cpu = s_cpu;
          wall.add(s_wall);
          cpu.add(s_cpu);
          flops.add(s_flops);
          msgs.add(s_msgs);
          bytes.add(s_bytes);
        }
        if (fm.any) {
          // Wall decomposition, exact by construction: compute is the
          // phase's thread-CPU time (clamped to wall), comm_wait the
          // measured blocked-recv time (clamped to what's left), and
          // pool_idle the residual — off-CPU time not explained by a
          // blocked receive (pool fan-in, scheduler, page faults).
          const double r_wait = wait_seconds_of(rm, phase);
          agg.comm_wait.add(r_wait);
          const double c = std::min(r_cpu, r_wall);
          const double w = std::min(r_wait, r_wall - c);
          agg.d_compute += c;
          agg.d_wait += w;
          agg.d_idle += r_wall - c - w;
          agg.d_wall += r_wall;
          agg.has_decomp = true;
        }
      }
      agg.wall.merge(wall);
      agg.cpu.merge(cpu);
      agg.flops.merge(flops);
      agg.msgs.merge(msgs);
      agg.bytes.merge(bytes);
      if (any_span) {
        agg.has_span = true;
        agg.busy += busy;
        agg.makespan += t1 - t0;
        // Per-rank slack: how much earlier each rank could have fired
        // relative to the phase makespan (ranks absent from the phase
        // idle through all of it).
        for (std::size_t i = 0; i < ranks.size(); ++i)
          agg.slack.add((t1 - t0) - rank_busy[i]);
        if (fm.any) {
          const GraphPath gp = graph_critical_path(msgs_by_dst, ivs);
          if (gp.valid) {
            agg.has_graph = true;
            agg.graph += gp.compute + gp.transfer;
            agg.graph_compute += gp.compute;
            agg.graph_transfer += gp.transfer;
          }
        }
      }
    }

    // ---- per-phase traffic matrices ---------------------------------
    for (const RankMetrics& rm : ranks) {
      for (const auto& [name, v] : rm.counters) {
        std::string phase;
        int dst = 0;
        bool is_msgs = false;
        if (!parse_commx(name, phase, dst, is_msgs)) continue;
        PKIFMM_CHECK_MSG(rm.rank >= 0 &&
                             rm.rank < static_cast<int>(ranks.size()) &&
                             dst >= 0 && dst < static_cast<int>(ranks.size()),
                         "commx counter '" << name << "' out of rank range");
        MatrixAgg& mat = matrices[phase];
        mat.ensure(ranks.size());
        auto& cell = is_msgs ? mat.msgs[static_cast<std::size_t>(rm.rank)]
                             : mat.bytes[static_cast<std::size_t>(rm.rank)];
        cell[static_cast<std::size_t>(dst)] += v;
      }
    }
  }

  // ---- document assembly --------------------------------------------
  Json doc = Json::object();
  doc.set("schema", kSummarySchema);
  doc.set("nranks", static_cast<std::int64_t>(nranks));
  doc.set("nruns", static_cast<std::int64_t>(runs.size()));
  doc.set("bench", bench);

  Json metrics = Json::object();
  for (const auto& [name, acc] : metric_aggs) metrics.set(name, stats_json(acc));
  doc.set("metrics", std::move(metrics));

  Json phases = Json::object();
  for (const auto& [name, agg] : phase_aggs) {
    Json ph = Json::object();
    ph.set("wall", stats_json(agg.wall));
    ph.set("cpu", stats_json(agg.cpu));
    ph.set("flops", stats_json(agg.flops));
    ph.set("msgs_sent", stats_json(agg.msgs));
    ph.set("bytes_sent", stats_json(agg.bytes));
    ph.set("critical_path", agg.makespan);
    // Defined only for phases with spans and a nonzero makespan window;
    // omitted otherwise (a fabricated 1.0 for a zero-wall phase would
    // read as "measured, perfectly overlapped").
    const double window = static_cast<double>(nranks) * agg.makespan;
    if (agg.has_span && window > 0.0)
      ph.set("overlap_efficiency", agg.busy / window);
    if (agg.has_span && have_flows) ph.set("slack", stats_json(agg.slack));
    if (agg.has_decomp) {
      ph.set("comm_wait", stats_json(agg.comm_wait));
      Json d = Json::object();
      d.set("compute", agg.d_compute);
      d.set("comm_wait", agg.d_wait);
      d.set("pool_idle", agg.d_idle);
      d.set("wall", agg.d_wall);
      ph.set("decomp", std::move(d));
    }
    if (agg.has_graph) {
      // Supersedes the epoch-aligned "critical_path" heuristic above:
      // the true dependency chain through spans + binding message
      // edges, split into compute and transfer legs.
      ph.set("critical_path_graph", agg.graph);
      ph.set("critical_path_graph_compute", agg.graph_compute);
      ph.set("critical_path_graph_transfer", agg.graph_transfer);
    }
    phases.set(name, std::move(ph));
  }
  doc.set("phases", std::move(phases));

  if (have_flows) {
    Json flow = Json::object();
    flow.set("matched", fl_matched);
    flow.set("unmatched_sends", fl_unmatched_sends);
    flow.set("unmatched_recvs", fl_unmatched_recvs);
    flow.set("late_sender", fl_late_sender);
    flow.set("late_receiver", fl_late_receiver);
    auto metric_total = [&](const char* name) -> double {
      auto it = metric_aggs.find(name);
      return it == metric_aggs.end()
                 ? 0.0
                 : it->second.mean() *
                       static_cast<double>(it->second.count());
    };
    flow.set("events", metric_total("flow.events"));
    flow.set("dropped", metric_total("flow.dropped"));
    flow.set("probes", metric_total("flow.probes"));
    Json pairs = Json::array();
    for (auto& [key, pa] : pair_aggs) {
      Json p = Json::object();
      p.set("src", static_cast<std::int64_t>(key.first));
      p.set("dst", static_cast<std::int64_t>(key.second));
      p.set("msgs", pa.msgs);
      p.set("bytes", pa.bytes);
      p.set("late_sender_msgs", pa.late_sender);
      p.set("wait_seconds", pa.wait_seconds);
      std::sort(pa.latencies.begin(), pa.latencies.end());
      p.set("latency_p50", percentile(pa.latencies, 0.50));
      p.set("latency_p95", percentile(pa.latencies, 0.95));
      p.set("latency_max",
            pa.latencies.empty() ? 0.0 : pa.latencies.back());
      pairs.push_back(std::move(p));
    }
    flow.set("pairs", std::move(pairs));
    doc.set("flow", std::move(flow));
  }

  // ---- health section (runs with FmmOptions::health only) -----------
  // All health signals are plain counters (the only metric kind the
  // cross-rank aggregation carries), so this section is pure
  // derivation: cross-rank sums for the additive signals, the exact
  // L2-norm ratio for the sampled error, and exact-equality checks for
  // the digest pairs that must balance globally (see obs/health.hpp —
  // digests are integer-valued doubles, so summed comparisons are
  // exact well below 2^53).
  {
    auto metric_total = [&](const char* name) -> double {
      auto it = metric_aggs.find(name);
      return it == metric_aggs.end()
                 ? 0.0
                 : it->second.mean() *
                       static_cast<double>(it->second.count());
    };
    auto metric_max = [&](const char* name) -> double {
      auto it = metric_aggs.find(name);
      return it == metric_aggs.end() || it->second.count() == 0
                 ? 0.0
                 : it->second.max();
    };
    bool have_health = false;
    for (const auto& [name, acc] : metric_aggs)
      if (name.starts_with("health.")) {
        have_health = true;
        break;
      }
    if (have_health) {
      Json health = Json::object();
      // Every rank counts each health-enabled evaluate() once, so the
      // per-rank max is the number of instrumented steps.
      health.set("steps", metric_max("health.steps"));

      Json sample = Json::object();
      const double cnt = metric_total("health.sample.count");
      const double err2 = metric_total("health.sample.err2");
      const double ref2 = metric_total("health.sample.ref2");
      sample.set("count", cnt);
      sample.set("err2", err2);
      sample.set("ref2", ref2);
      sample.set("rel_err", ref2 > 0.0 ? std::sqrt(err2 / ref2) : 0.0);
      sample.set("gid_digest", metric_total("health.sample.gid_digest"));
      health.set("sample", std::move(sample));

      Json sent = Json::object();
      sent.set("nonfinite", metric_total("health.s2u.nonfinite") +
                                metric_total("health.reduce.nonfinite") +
                                metric_total("health.d2t.nonfinite"));
      sent.set("moment_violations",
               metric_total("health.moment.violations"));
      sent.set("moment_max_rel", metric_max("health.moment.max_rel"));
      sent.set("injected", metric_total("health.injected"));
      health.set("sentinels", std::move(sent));

      Json dig = Json::object();
      const double dden = metric_total("health.digest.den");
      const double dghost = metric_total("health.digest.ghost");
      const double psent = metric_total("health.comm.payload_sent");
      const double precv = metric_total("health.comm.payload_recv");
      dig.set("u", metric_total("health.digest.u"));
      dig.set("reduce", metric_total("health.digest.reduce"));
      dig.set("pot", metric_total("health.digest.pot"));
      dig.set("den", dden);
      dig.set("ghost", dghost);
      dig.set("ghost_match", dden == dghost);
      dig.set("payload_sent", psent);
      dig.set("payload_recv", precv);
      dig.set("payload_match", psent == precv);
      health.set("digests", std::move(dig));

      // Drift counters are recorded identically on every rank (the
      // decision derives from the shared summary), so per-rank max is
      // the per-run value.
      Json drift = Json::object();
      drift.set("steps", metric_max("health.drift.steps"));
      drift.set("warnings", metric_max("health.drift.warnings"));
      drift.set("err_max", metric_max("health.drift.err_max"));
      health.set("drift", std::move(drift));

      doc.set("health", std::move(health));
    }
  }

  Json comm_matrix = Json::object();
  for (auto& [phase, mat] : matrices) {
    mat.ensure(nranks);  // pad to the final rank count
    Json jm = Json::object();
    jm.set("msgs", matrix_json(mat.msgs));
    jm.set("bytes", matrix_json(mat.bytes));
    comm_matrix.set(phase, std::move(jm));
  }
  doc.set("comm_matrix", std::move(comm_matrix));
  return doc;
}

void validate_summary_json(const Json& doc) {
  PKIFMM_CHECK_MSG(doc.type() == Json::Type::kObject,
                   "summary document must be a JSON object");
  PKIFMM_CHECK_MSG(doc.contains("schema") &&
                       doc.at("schema").as_string() == kSummarySchema,
                   "unknown summary schema");
  for (const char* field : {"nranks", "nruns", "bench", "metrics", "phases",
                            "comm_matrix"})
    PKIFMM_CHECK_MSG(doc.contains(field),
                     "summary missing '" << field << "'");
  const std::int64_t nranks = doc.at("nranks").as_int();
  PKIFMM_CHECK_MSG(nranks >= 0, "negative nranks");

  const Json& metrics = doc.at("metrics");
  PKIFMM_CHECK(metrics.type() == Json::Type::kObject);
  for (const std::string& name : metrics.keys()) {
    for (const char* field : {"min", "max", "avg", "stddev", "sum", "count"})
      PKIFMM_CHECK_MSG(metrics.at(name).contains(field),
                       "metric '" << name << "' missing '" << field << "'");
    // Optional: omitted for degenerate (zero/empty) sample sets, but
    // must be numeric and finite when present.
    if (metrics.at(name).contains("imbalance")) {
      const Json& im = metrics.at(name).at("imbalance");
      PKIFMM_CHECK_MSG(im.is_number() && std::isfinite(im.as_double()),
                       "metric '" << name << "' imbalance not finite");
    }
  }

  const Json& phases = doc.at("phases");
  PKIFMM_CHECK(phases.type() == Json::Type::kObject);
  for (const std::string& name : phases.keys()) {
    const Json& ph = phases.at(name);
    for (const char* field : {"wall", "cpu", "flops", "msgs_sent",
                              "bytes_sent"})
      PKIFMM_CHECK_MSG(ph.contains(field) && ph.at(field).contains("sum"),
                       "phase '" << name << "' missing stats '" << field
                                 << "'");
    PKIFMM_CHECK_MSG(ph.contains("critical_path") &&
                         ph.at("critical_path").is_number(),
                     "phase '" << name << "' missing 'critical_path'");
    // Optional: omitted for zero-wall / span-less phases, but must be a
    // finite number when present.
    if (ph.contains("overlap_efficiency")) {
      const Json& oe = ph.at("overlap_efficiency");
      PKIFMM_CHECK_MSG(oe.is_number() && std::isfinite(oe.as_double()),
                       "phase '" << name
                                 << "' overlap_efficiency not finite");
    }
    // Flow-derived fields are optional (present for --flow-trace runs).
    if (ph.contains("decomp")) {
      const Json& d = ph.at("decomp");
      double sum = 0.0;
      for (const char* field : {"compute", "comm_wait", "pool_idle"}) {
        PKIFMM_CHECK_MSG(d.contains(field) && d.at(field).is_number() &&
                             d.at(field).as_double() >= 0.0,
                         "phase '" << name << "' decomp field '" << field
                                   << "' missing or negative");
        sum += d.at(field).as_double();
      }
      PKIFMM_CHECK_MSG(d.contains("wall") && d.at("wall").is_number(),
                       "phase '" << name << "' decomp missing 'wall'");
      const double wall = d.at("wall").as_double();
      // The decomposition is constructed to sum to wall exactly; 1%
      // covers float round-off through a JSON round-trip.
      PKIFMM_CHECK_MSG(std::abs(sum - wall) <= 0.01 * std::max(wall, 1e-12),
                       "phase '" << name << "' decomp does not sum to wall");
    }
    if (ph.contains("critical_path_graph"))
      for (const char* field :
           {"critical_path_graph", "critical_path_graph_compute",
            "critical_path_graph_transfer"})
        PKIFMM_CHECK_MSG(ph.contains(field) && ph.at(field).is_number() &&
                             ph.at(field).as_double() >= 0.0,
                         "phase '" << name << "' field '" << field
                                   << "' missing or negative");
  }

  if (doc.contains("flow")) {
    const Json& flow = doc.at("flow");
    PKIFMM_CHECK(flow.type() == Json::Type::kObject);
    for (const char* field :
         {"matched", "unmatched_sends", "unmatched_recvs", "late_sender",
          "late_receiver", "events", "dropped", "probes"})
      PKIFMM_CHECK_MSG(flow.contains(field) && flow.at(field).is_number(),
                       "flow section missing '" << field << "'");
    PKIFMM_CHECK_MSG(flow.contains("pairs") &&
                         flow.at("pairs").type() == Json::Type::kArray,
                     "flow section missing 'pairs' array");
    for (const Json& p : flow.at("pairs").items())
      for (const char* field :
           {"src", "dst", "msgs", "bytes", "late_sender_msgs",
            "wait_seconds", "latency_p50", "latency_p95", "latency_max"})
        PKIFMM_CHECK_MSG(p.contains(field) && p.at(field).is_number(),
                         "flow pair missing '" << field << "'");
  }

  // Health section is optional (FmmOptions::health runs only).
  if (doc.contains("health")) {
    const Json& health = doc.at("health");
    PKIFMM_CHECK(health.type() == Json::Type::kObject);
    PKIFMM_CHECK_MSG(health.contains("steps") &&
                         health.at("steps").is_number(),
                     "health section missing 'steps'");
    for (const char* sect : {"sample", "sentinels", "digests", "drift"})
      PKIFMM_CHECK_MSG(health.contains(sect) &&
                           health.at(sect).type() == Json::Type::kObject,
                       "health section missing '" << sect << "'");
    const Json& sample = health.at("sample");
    for (const char* field :
         {"count", "err2", "ref2", "rel_err", "gid_digest"})
      PKIFMM_CHECK_MSG(sample.contains(field) &&
                           sample.at(field).is_number() &&
                           std::isfinite(sample.at(field).as_double()),
                       "health sample missing '" << field << "'");
    const Json& sent = health.at("sentinels");
    for (const char* field :
         {"nonfinite", "moment_violations", "moment_max_rel", "injected"})
      PKIFMM_CHECK_MSG(sent.contains(field) && sent.at(field).is_number(),
                       "health sentinels missing '" << field << "'");
    const Json& dig = health.at("digests");
    for (const char* field : {"u", "reduce", "pot", "den", "ghost",
                              "payload_sent", "payload_recv"})
      PKIFMM_CHECK_MSG(dig.contains(field) && dig.at(field).is_number(),
                       "health digests missing '" << field << "'");
    for (const char* field : {"ghost_match", "payload_match"})
      PKIFMM_CHECK_MSG(dig.contains(field),
                       "health digests missing '" << field << "'");
    const Json& drift = health.at("drift");
    for (const char* field : {"steps", "warnings", "err_max"})
      PKIFMM_CHECK_MSG(drift.contains(field) &&
                           drift.at(field).is_number(),
                       "health drift missing '" << field << "'");
  }

  const Json& mats = doc.at("comm_matrix");
  PKIFMM_CHECK(mats.type() == Json::Type::kObject);
  for (const std::string& phase : mats.keys()) {
    const Json& jm = mats.at(phase);
    for (const char* field : {"msgs", "bytes"}) {
      PKIFMM_CHECK_MSG(jm.contains(field),
                       "comm_matrix '" << phase << "' missing '" << field
                                       << "'");
      const Json& rows = jm.at(field);
      PKIFMM_CHECK_MSG(
          static_cast<std::int64_t>(rows.size()) == nranks,
          "comm_matrix '" << phase << "." << field << "' is not " << nranks
                          << " rows");
      for (const Json& row : rows.items())
        PKIFMM_CHECK_MSG(static_cast<std::int64_t>(row.size()) == nranks,
                         "comm_matrix '" << phase << "." << field
                                         << "' row is not " << nranks
                                         << " wide");
    }
  }
}

void write_summary_json(const std::string& path, const Json& summary) {
  validate_summary_json(summary);
  write_json_file(path, summary);
}

Json compare_summaries(const Json& fresh, const Json& baseline,
                       const GateOptions& opt) {
  validate_summary_json(fresh);
  validate_summary_json(baseline);
  PKIFMM_CHECK_MSG(fresh.at("nranks").as_int() ==
                       baseline.at("nranks").as_int(),
                   "summaries ran at different rank counts ("
                       << fresh.at("nranks").as_int() << " vs "
                       << baseline.at("nranks").as_int()
                       << "); not comparable");

  Json violations = Json::array();
  std::int64_t checked = 0;

  const Json& bphases = baseline.at("phases");
  const Json& fphases = fresh.at("phases");
  for (const std::string& phase : bphases.keys()) {
    if (!fphases.contains(phase)) {
      Json v = Json::object();
      v.set("phase", phase);
      v.set("metric", "missing");
      v.set("baseline", bphases.at(phase).at("wall").at("sum").as_double());
      v.set("fresh", 0.0);
      v.set("ratio", 0.0);
      v.set("limit", 0.0);
      violations.push_back(std::move(v));
      continue;
    }
    const Json& bp = bphases.at(phase);
    const Json& fp = fphases.at(phase);

    struct Check {
      const char* metric;
      double limit;
      double floor;
    };
    const Check checks[] = {
        {"wall", opt.time_ratio, opt.min_seconds},
        {"cpu", opt.time_ratio, opt.min_seconds},
        {"flops", opt.work_ratio, opt.min_flops},
        {"msgs_sent", opt.work_ratio, opt.min_msgs},
        {"bytes_sent", opt.work_ratio, opt.min_bytes},
    };
    for (const Check& c : checks) {
      const double base = bp.at(c.metric).at("sum").as_double();
      const double now = fp.at(c.metric).at("sum").as_double();
      // Machine-tolerance envelope: tiny phases are all noise. A fresh
      // value below the floor passes outright; the baseline is clamped
      // to the floor so growth from ~0 is still caught.
      if (now < c.floor) continue;
      ++checked;
      const double ratio = now / std::max(base, c.floor);
      if (ratio > c.limit) {
        Json v = Json::object();
        v.set("phase", phase);
        v.set("metric", c.metric);
        v.set("baseline", base);
        v.set("fresh", now);
        v.set("ratio", ratio);
        v.set("limit", c.limit);
        violations.push_back(std::move(v));
      }
    }
  }

  Json report = Json::object();
  report.set("ok", violations.size() == 0);
  report.set("checked", checked);
  report.set("violations", std::move(violations));
  return report;
}

}  // namespace pkifmm::obs
