#include "obs/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "util/stats.hpp"

namespace pkifmm::obs {

namespace {

// ------------------------------------------------------------ helpers

Json stats_json(const Accumulator& a) {
  Summary s;
  s.count = a.count();
  if (a.count() > 0) {
    s.min = a.min();
    s.max = a.max();
    s.avg = a.mean();
    s.stddev = a.stddev();
  }
  Json out = Json::object();
  out.set("min", s.min);
  out.set("max", s.max);
  out.set("avg", s.avg);
  out.set("stddev", s.stddev);
  out.set("sum", s.avg * static_cast<double>(s.count));
  out.set("count", static_cast<std::int64_t>(s.count));
  out.set("imbalance", s.imbalance());
  return out;
}

double counter_of(const RankMetrics& rm, const std::string& name) {
  auto it = rm.counters.find(name);
  return it == rm.counters.end() ? 0.0 : it->second;
}

/// Parses "commx.<phase>.dst<k>.msgs|bytes"; returns false for
/// anything else.
bool parse_commx(const std::string& name, std::string& phase, int& dst,
                 bool& is_msgs) {
  if (!name.starts_with("commx.")) return false;
  std::string rest = name.substr(6);
  if (rest.ends_with(".msgs")) {
    is_msgs = true;
    rest.resize(rest.size() - 5);
  } else if (rest.ends_with(".bytes")) {
    is_msgs = false;
    rest.resize(rest.size() - 6);
  } else {
    return false;
  }
  const std::size_t pos = rest.rfind(".dst");
  if (pos == std::string::npos) return false;
  phase = rest.substr(0, pos);
  const std::string num = rest.substr(pos + 4);
  if (num.empty()) return false;
  dst = 0;
  for (char c : num) {
    if (c < '0' || c > '9') return false;
    dst = dst * 10 + (c - '0');
  }
  return true;
}

/// Per-phase cross-run aggregation state.
struct PhaseAgg {
  Accumulator wall, cpu, flops, msgs, bytes;
  double busy = 0.0;      ///< Σ span wall over ranks and runs
  double makespan = 0.0;  ///< Σ per-run cross-rank makespan
  bool has_span = false;
};

/// Dense per-phase traffic matrices, grown to the largest rank count.
struct MatrixAgg {
  std::vector<std::vector<double>> msgs, bytes;

  void ensure(std::size_t n) {
    const std::size_t old = msgs.size();
    const std::size_t next = std::max(old, n);
    msgs.resize(next);
    bytes.resize(next);
    for (auto& row : msgs) row.resize(next, 0.0);
    for (auto& row : bytes) row.resize(next, 0.0);
  }
};

Json matrix_json(const std::vector<std::vector<double>>& m) {
  Json rows = Json::array();
  for (const auto& row : m) {
    Json jr = Json::array();
    for (double v : row) jr.push_back(Json(v));
    rows.push_back(std::move(jr));
  }
  return rows;
}

}  // namespace

Json summarize_metrics(const std::vector<RankMetrics>& ranks) {
  return summarize_runs("", {ranks});
}

Json summarize_runs(const std::string& bench,
                    const std::vector<std::vector<RankMetrics>>& runs) {
  std::map<std::string, Accumulator> metric_aggs;
  std::map<std::string, PhaseAgg> phase_aggs;
  std::map<std::string, MatrixAgg> matrices;
  std::size_t nranks = 0;

  for (const std::vector<RankMetrics>& ranks : runs) {
    nranks = std::max(nranks, ranks.size());

    // ---- flat metric stats: union of counter names, missing -> 0 ----
    std::set<std::string> names;
    for (const RankMetrics& rm : ranks)
      for (const auto& [name, v] : rm.counters) names.insert(name);
    for (const std::string& name : names) {
      if (name.starts_with("commx.")) continue;  // matrix carries these
      Accumulator acc;
      for (const RankMetrics& rm : ranks) acc.add(counter_of(rm, name));
      metric_aggs[name].merge(acc);
    }

    // ---- phase discovery: canonical counters plus span names --------
    std::set<std::string> phases;
    std::set<std::string> counter_phases;
    for (const std::string& name : names) {
      if (name.starts_with("time.") && name.ends_with(".wall")) {
        counter_phases.insert(name.substr(5, name.size() - 10));
      } else if (name.starts_with("flops.")) {
        counter_phases.insert(name.substr(6));
      } else if (name.starts_with("comm.")) {
        const std::size_t dot = name.rfind('.');
        if (dot > 5) counter_phases.insert(name.substr(5, dot - 5));
      }
    }
    phases = counter_phases;
    for (const RankMetrics& rm : ranks)
      for (const SpanEvent& e : rm.spans) phases.insert(e.name);

    for (const std::string& phase : phases) {
      PhaseAgg& agg = phase_aggs[phase];
      const bool from_counters = counter_phases.count(phase) > 0;
      Accumulator wall, cpu, flops, msgs, bytes;
      double t0 = std::numeric_limits<double>::infinity();
      double t1 = -std::numeric_limits<double>::infinity();
      double busy = 0.0;
      bool any_span = false;

      for (const RankMetrics& rm : ranks) {
        double s_wall = 0.0, s_cpu = 0.0, s_flops = 0.0, s_msgs = 0.0,
               s_bytes = 0.0;
        auto eit = rm.gauges.find("obs.epoch");
        const double epoch = eit == rm.gauges.end() ? 0.0 : eit->second;
        for (const SpanEvent& e : rm.spans) {
          if (e.name != phase) continue;
          any_span = true;
          s_wall += e.wall;
          s_cpu += e.cpu;
          s_flops += static_cast<double>(e.flops);
          s_msgs += static_cast<double>(e.msgs);
          s_bytes += static_cast<double>(e.bytes);
          t0 = std::min(t0, epoch + e.start);
          t1 = std::max(t1, epoch + e.start + e.wall);
        }
        busy += s_wall;
        if (from_counters) {
          wall.add(counter_of(rm, "time." + phase + ".wall"));
          cpu.add(counter_of(rm, "time." + phase + ".cpu"));
          flops.add(counter_of(rm, "flops." + phase));
          msgs.add(counter_of(rm, "comm." + phase + ".msgs_sent"));
          bytes.add(counter_of(rm, "comm." + phase + ".bytes_sent"));
        } else {
          wall.add(s_wall);
          cpu.add(s_cpu);
          flops.add(s_flops);
          msgs.add(s_msgs);
          bytes.add(s_bytes);
        }
      }
      agg.wall.merge(wall);
      agg.cpu.merge(cpu);
      agg.flops.merge(flops);
      agg.msgs.merge(msgs);
      agg.bytes.merge(bytes);
      if (any_span) {
        agg.has_span = true;
        agg.busy += busy;
        agg.makespan += t1 - t0;
      }
    }

    // ---- per-phase traffic matrices ---------------------------------
    for (const RankMetrics& rm : ranks) {
      for (const auto& [name, v] : rm.counters) {
        std::string phase;
        int dst = 0;
        bool is_msgs = false;
        if (!parse_commx(name, phase, dst, is_msgs)) continue;
        PKIFMM_CHECK_MSG(rm.rank >= 0 &&
                             rm.rank < static_cast<int>(ranks.size()) &&
                             dst >= 0 && dst < static_cast<int>(ranks.size()),
                         "commx counter '" << name << "' out of rank range");
        MatrixAgg& mat = matrices[phase];
        mat.ensure(ranks.size());
        auto& cell = is_msgs ? mat.msgs[static_cast<std::size_t>(rm.rank)]
                             : mat.bytes[static_cast<std::size_t>(rm.rank)];
        cell[static_cast<std::size_t>(dst)] += v;
      }
    }
  }

  // ---- document assembly --------------------------------------------
  Json doc = Json::object();
  doc.set("schema", kSummarySchema);
  doc.set("nranks", static_cast<std::int64_t>(nranks));
  doc.set("nruns", static_cast<std::int64_t>(runs.size()));
  doc.set("bench", bench);

  Json metrics = Json::object();
  for (const auto& [name, acc] : metric_aggs) metrics.set(name, stats_json(acc));
  doc.set("metrics", std::move(metrics));

  Json phases = Json::object();
  for (const auto& [name, agg] : phase_aggs) {
    Json ph = Json::object();
    ph.set("wall", stats_json(agg.wall));
    ph.set("cpu", stats_json(agg.cpu));
    ph.set("flops", stats_json(agg.flops));
    ph.set("msgs_sent", stats_json(agg.msgs));
    ph.set("bytes_sent", stats_json(agg.bytes));
    ph.set("critical_path", agg.makespan);
    const double window = static_cast<double>(nranks) * agg.makespan;
    ph.set("overlap_efficiency",
           agg.has_span && window > 0.0 ? agg.busy / window : 1.0);
    phases.set(name, std::move(ph));
  }
  doc.set("phases", std::move(phases));

  Json comm_matrix = Json::object();
  for (auto& [phase, mat] : matrices) {
    mat.ensure(nranks);  // pad to the final rank count
    Json jm = Json::object();
    jm.set("msgs", matrix_json(mat.msgs));
    jm.set("bytes", matrix_json(mat.bytes));
    comm_matrix.set(phase, std::move(jm));
  }
  doc.set("comm_matrix", std::move(comm_matrix));
  return doc;
}

void validate_summary_json(const Json& doc) {
  PKIFMM_CHECK_MSG(doc.type() == Json::Type::kObject,
                   "summary document must be a JSON object");
  PKIFMM_CHECK_MSG(doc.contains("schema") &&
                       doc.at("schema").as_string() == kSummarySchema,
                   "unknown summary schema");
  for (const char* field : {"nranks", "nruns", "bench", "metrics", "phases",
                            "comm_matrix"})
    PKIFMM_CHECK_MSG(doc.contains(field),
                     "summary missing '" << field << "'");
  const std::int64_t nranks = doc.at("nranks").as_int();
  PKIFMM_CHECK_MSG(nranks >= 0, "negative nranks");

  const Json& metrics = doc.at("metrics");
  PKIFMM_CHECK(metrics.type() == Json::Type::kObject);
  for (const std::string& name : metrics.keys())
    for (const char* field :
         {"min", "max", "avg", "stddev", "sum", "count", "imbalance"})
      PKIFMM_CHECK_MSG(metrics.at(name).contains(field),
                       "metric '" << name << "' missing '" << field << "'");

  const Json& phases = doc.at("phases");
  PKIFMM_CHECK(phases.type() == Json::Type::kObject);
  for (const std::string& name : phases.keys()) {
    const Json& ph = phases.at(name);
    for (const char* field : {"wall", "cpu", "flops", "msgs_sent",
                              "bytes_sent"})
      PKIFMM_CHECK_MSG(ph.contains(field) && ph.at(field).contains("sum"),
                       "phase '" << name << "' missing stats '" << field
                                 << "'");
    for (const char* field : {"critical_path", "overlap_efficiency"})
      PKIFMM_CHECK_MSG(ph.contains(field) && ph.at(field).is_number(),
                       "phase '" << name << "' missing '" << field << "'");
  }

  const Json& mats = doc.at("comm_matrix");
  PKIFMM_CHECK(mats.type() == Json::Type::kObject);
  for (const std::string& phase : mats.keys()) {
    const Json& jm = mats.at(phase);
    for (const char* field : {"msgs", "bytes"}) {
      PKIFMM_CHECK_MSG(jm.contains(field),
                       "comm_matrix '" << phase << "' missing '" << field
                                       << "'");
      const Json& rows = jm.at(field);
      PKIFMM_CHECK_MSG(
          static_cast<std::int64_t>(rows.size()) == nranks,
          "comm_matrix '" << phase << "." << field << "' is not " << nranks
                          << " rows");
      for (const Json& row : rows.items())
        PKIFMM_CHECK_MSG(static_cast<std::int64_t>(row.size()) == nranks,
                         "comm_matrix '" << phase << "." << field
                                         << "' row is not " << nranks
                                         << " wide");
    }
  }
}

void write_summary_json(const std::string& path, const Json& summary) {
  validate_summary_json(summary);
  write_json_file(path, summary);
}

Json compare_summaries(const Json& fresh, const Json& baseline,
                       const GateOptions& opt) {
  validate_summary_json(fresh);
  validate_summary_json(baseline);
  PKIFMM_CHECK_MSG(fresh.at("nranks").as_int() ==
                       baseline.at("nranks").as_int(),
                   "summaries ran at different rank counts ("
                       << fresh.at("nranks").as_int() << " vs "
                       << baseline.at("nranks").as_int()
                       << "); not comparable");

  Json violations = Json::array();
  std::int64_t checked = 0;

  const Json& bphases = baseline.at("phases");
  const Json& fphases = fresh.at("phases");
  for (const std::string& phase : bphases.keys()) {
    if (!fphases.contains(phase)) {
      Json v = Json::object();
      v.set("phase", phase);
      v.set("metric", "missing");
      v.set("baseline", bphases.at(phase).at("wall").at("sum").as_double());
      v.set("fresh", 0.0);
      v.set("ratio", 0.0);
      v.set("limit", 0.0);
      violations.push_back(std::move(v));
      continue;
    }
    const Json& bp = bphases.at(phase);
    const Json& fp = fphases.at(phase);

    struct Check {
      const char* metric;
      double limit;
      double floor;
    };
    const Check checks[] = {
        {"wall", opt.time_ratio, opt.min_seconds},
        {"cpu", opt.time_ratio, opt.min_seconds},
        {"flops", opt.work_ratio, opt.min_flops},
        {"msgs_sent", opt.work_ratio, opt.min_msgs},
        {"bytes_sent", opt.work_ratio, opt.min_bytes},
    };
    for (const Check& c : checks) {
      const double base = bp.at(c.metric).at("sum").as_double();
      const double now = fp.at(c.metric).at("sum").as_double();
      // Machine-tolerance envelope: tiny phases are all noise. A fresh
      // value below the floor passes outright; the baseline is clamped
      // to the floor so growth from ~0 is still caught.
      if (now < c.floor) continue;
      ++checked;
      const double ratio = now / std::max(base, c.floor);
      if (ratio > c.limit) {
        Json v = Json::object();
        v.set("phase", phase);
        v.set("metric", c.metric);
        v.set("baseline", base);
        v.set("fresh", now);
        v.set("ratio", ratio);
        v.set("limit", c.limit);
        violations.push_back(std::move(v));
      }
    }
  }

  Json report = Json::object();
  report.set("ok", violations.size() == 0);
  report.set("checked", checked);
  report.set("violations", std::move(violations));
  return report;
}

}  // namespace pkifmm::obs
