#pragma once
/// \file trend.hpp
/// \brief Bench-trajectory records ("pkifmm.run.v1") and trend
/// analysis over BENCH_history.jsonl.
///
/// The perf gate (aggregate.hpp compare_summaries) answers "is this
/// run worse than the one checked-in baseline?". Trend records answer
/// the longitudinal question — "how has each phase moved over the last
/// K runs?" — which is what catches the slow drift a single baseline
/// ratio absorbs. Every bench appends one compact line per run:
///
///   {
///     "schema": "pkifmm.run.v1",
///     "bench": "<name>",            // which bench produced it
///     "git_sha": "<sha|unknown>",   // --git-sha / PKIFMM_GIT_SHA /
///                                   // GITHUB_SHA
///     "nranks": <int>, "nruns": <int>,
///     "hw_source": "perf"|"fallback"|"mixed"|"none",
///     "config": { ... },            // free-form bench configuration
///     "phases": {                   // cross-rank SUMS per phase
///       "<phase>": { "wall", "cpu", "flops", "msgs_sent",
///                    "bytes_sent",
///                    // present only when any rank had perf access:
///                    "cycles", "instructions", "l1d_misses",
///                    "llc_misses", "branch_misses",
///                    // always present when ranks sampled memory:
///                    "minor_faults", "peak_rss_delta_bytes",
///                    // present only for --flow-trace runs (warn-only
///                    // gate, like hw/mem):
///                    "wait_seconds" }, ...
///     },
///     "mem": { "peak_rss_bytes": <process VmHWM at record time> },
///     // present only for health-enabled runs (warn-only gate):
///     "health": { "sampled_rel_err": <double>, "sample_count": <double> }
///   }
///
/// One JSON document per line (JSONL): appends are atomic enough for
/// sequential bench runs, the file diffs line-per-run in git, and a
/// truncated last line (crashed bench) only loses that run.
///
/// trend_analyze compares the newest record against the *median* of
/// the previous `window` records per (phase, metric) — the median
/// keeps one noisy CI machine from poisoning the reference. Time and
/// work metrics gate with the same ratios/floors as GateOptions
/// (hard-fail); hardware-counter and memory metrics only ever WARN,
/// because they are machine-dependent (a different CI host has a
/// different cache) and perf access comes and goes with the container.

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace pkifmm::obs {

inline constexpr const char* kRunSchema = "pkifmm.run.v1";

/// Builds a run record from a validated summary document ("phases"
/// sums + `hw.<phase>.*` / `mem.<phase>.*` metric sums + the current
/// process peak RSS). `config` is stored verbatim (pass Json::object()
/// for none).
Json run_record_from_summary(const Json& summary, const std::string& bench,
                             const std::string& git_sha,
                             const Json& config);

/// Validates the structural schema of one run record; throws
/// CheckFailure describing the first violation.
void validate_run_json(const Json& doc);

/// Appends one record as a single JSONL line (creates the file if
/// missing). Throws CheckFailure if the record fails validation or
/// the file cannot be written.
void append_run_record(const std::string& path, const Json& record);

/// Reads a JSONL history file; skips blank lines, throws CheckFailure
/// on unreadable files or lines that fail to parse/validate.
std::vector<Json> read_run_history(const std::string& path);

/// Thresholds for trend_analyze. Time/work ratios and floors mirror
/// GateOptions; hw metrics get their own looser ratio and are
/// warn-only regardless.
struct TrendOptions {
  int window = 8;             ///< reference = median of last `window`
                              ///< records before the newest
  double time_ratio = 1.6;    ///< hard bound for wall & cpu
  double work_ratio = 1.25;   ///< hard bound for flops / msgs / bytes
  double hw_ratio = 1.5;      ///< WARN bound for cycles/misses/faults/rss
  double min_seconds = 5e-2;  ///< floors, as in GateOptions
  double min_flops = 1e4;
  double min_msgs = 16;
  double min_bytes = 4096;
  double min_hw = 1e6;        ///< ignore hw metrics below this count
  /// WARN bound for the sampled relative error of health-enabled runs
  /// (run record field "health.sampled_rel_err"): warn when fresh
  /// exceeds err_ratio × the reference median. Generous because the
  /// sample set varies per step and small samples are noisy; the hard
  /// accuracy contract stays in the offline tests.
  double err_ratio = 4.0;
  double min_err = 1e-12;     ///< ignore errors below this (p large
                              ///< enough that the sample underflows)
  /// Promote the warn-only hw/mem/wait findings to hard failures
  /// ("ok" = false when any warning fires). For CI lanes pinned to one
  /// machine class, where hw counters ARE comparable run-over-run.
  bool strict = false;
};

/// Analyzes records of ONE bench, ordered oldest -> newest. The newest
/// record is compared per phase against the median of up to
/// opt.window preceding records. Returns
///   { "ok": bool,                  // no hard regressions
///     "checked": <int>, "window": <int>,  // references actually used
///     "newest_sha": "<sha>",
///     "regressions": [ { "phase", "metric", "reference", "fresh",
///                        "ratio", "limit" }, ... ],
///     "warnings":   [ ...same shape, hw/mem metrics... ] }
/// A phase present in every reference record but missing from the
/// newest is a regression with metric "missing". Fewer than 2 records
/// yields ok with checked = 0 (nothing to compare yet). Throws
/// CheckFailure if any record fails validate_run_json.
Json trend_analyze(const std::vector<Json>& records,
                   const TrendOptions& opt = {});

}  // namespace pkifmm::obs
