#pragma once
/// \file hw.hpp
/// \brief Hardware-counter and memory-telemetry sampling for obs spans.
///
/// The per-phase breakdown (Table II) says *where* time goes; this
/// layer says *why*: cycles, instructions, and cache-miss counts per
/// phase turn "VLI is slow" into "VLI runs at 0.4 IPC with an LLC miss
/// every 40 instructions — bandwidth-bound", which is how the roofline
/// section of pkifmm_report classifies phases.
///
/// HwCounters opens one perf_event_open(2) fd per event (cycles,
/// instructions, L1d-read misses, LLC misses, branch misses) attached
/// to the *calling thread*, so every simulated rank measures its own
/// rank thread. Containers and locked-down CI commonly refuse the
/// syscall (EACCES under perf_event_paranoid >= 2 without
/// CAP_PERFMON, ENOSYS in seccomp sandboxes); in that case the object
/// degrades to a fallback source that still reports what the kernel
/// will always give us: minor/major page faults and context switches
/// from getrusage(RUSAGE_THREAD). Consumers check source() — the
/// schema marks perf-only fields absent rather than zero.
///
/// Memory telemetry is process-wide by nature: current_rss_bytes() and
/// peak_rss_bytes() parse VmRSS/VmHWM from /proc/self/status (with a
/// getrusage(RUSAGE_SELF) ru_maxrss fallback for the peak). Recorder
/// samples the peak at span boundaries, so a phase's
/// `mem.<phase>.peak_rss_delta_bytes` is the amount the process
/// high-water mark advanced while that phase was open — attribution is
/// approximate when several rank threads run phases concurrently
/// (documented in DESIGN.md §5b).
///
/// Thread affinity: the perf fds count the thread that constructed the
/// HwCounters. Construct it on the rank thread (comm::Runtime does)
/// and never sample it from another thread. TaskPool worker lanes are
/// NOT counted — rank-thread counters understate multi-lane phases,
/// which the roofline report calls out when sched.workers > 0.

#include <cstdint>

namespace pkifmm::obs {

/// Bitmask of which HwSample fields hold real measurements.
enum HwField : std::uint32_t {
  kHwCycles = 1u << 0,
  kHwInstructions = 1u << 1,
  kHwL1dMisses = 1u << 2,
  kHwLlcMisses = 1u << 3,
  kHwBranchMisses = 1u << 4,
  kHwFaults = 1u << 5,  ///< minor/major faults + ctx switches (rusage)
};

/// One point-in-time reading. All fields are monotone totals since the
/// HwCounters was constructed; consumers take deltas. Fields whose bit
/// is missing from HwCounters::fields() are zero and must be treated
/// as unavailable, not as measured-zero.
struct HwSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t ctx_switches = 0;  ///< voluntary + involuntary
};

class HwCounters {
 public:
  enum class Source {
    kPerf,      ///< perf_event_open succeeded for at least one event
    kFallback,  ///< rusage-only (perf denied, unsupported, or off)
  };

  /// Signature of the injectable event opener (tests simulate EACCES /
  /// ENOSYS without touching the real syscall). Receives the
  /// PERF_TYPE_* type and the event config; returns an fd or -1 with
  /// errno set.
  using OpenFn = int (*)(std::uint32_t type, std::uint64_t config);

  /// Opens the counters for the calling thread. `allow_perf = false`
  /// (or the environment variable PKIFMM_NO_PERF=1) skips the syscall
  /// entirely and forces the fallback source. `open_fn` overrides the
  /// perf_event_open wrapper for tests; nullptr uses the real syscall.
  explicit HwCounters(bool allow_perf = true, OpenFn open_fn = nullptr);
  ~HwCounters();

  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  Source source() const { return source_; }
  const char* source_name() const {
    return source_ == Source::kPerf ? "perf" : "fallback";
  }
  /// errno from the failed cycles-counter open when source() is
  /// kFallback because the syscall failed; 0 when perf is live or was
  /// never attempted (allow_perf = false).
  int perf_errno() const { return perf_errno_; }
  /// Bitmask of HwField values that read() actually measures.
  std::uint32_t fields() const { return fields_; }

  /// Reads every available counter. Call only from the constructing
  /// thread (the perf fds and RUSAGE_THREAD are thread-scoped).
  HwSample read() const;

 private:
  static constexpr int kEvents = 5;
  int fds_[kEvents] = {-1, -1, -1, -1, -1};
  Source source_ = Source::kFallback;
  std::uint32_t fields_ = 0;
  int perf_errno_ = 0;
};

/// Current resident-set size of the process (VmRSS), or 0 if
/// /proc/self/status is unreadable.
std::uint64_t current_rss_bytes();

/// Peak resident-set size of the process (VmHWM, falling back to
/// getrusage ru_maxrss). Monotone non-decreasing over process life.
std::uint64_t peak_rss_bytes();

}  // namespace pkifmm::obs
