#include "obs/export.hpp"

#include <cmath>
#include <set>

namespace pkifmm::obs {

namespace {

Json hist_to_json(const Histogram& h) {
  Json out = Json::object();
  out.set("count", static_cast<std::int64_t>(h.count()));
  out.set("sum", h.sum());
  out.set("min", h.min());
  out.set("max", h.max());
  Json buckets = Json::array();
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (h.buckets()[b] == 0) continue;
    Json pair = Json::array();
    pair.push_back(Json(static_cast<std::int64_t>(b)));
    pair.push_back(Json(static_cast<std::int64_t>(h.buckets()[b])));
    buckets.push_back(std::move(pair));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

Json map_to_json(const std::map<std::string, double>& m) {
  Json out = Json::object();
  for (const auto& [name, v] : m) out.set(name, v);
  return out;
}

Json span_to_json(const SpanEvent& e) {
  Json out = Json::object();
  out.set("name", e.name);
  out.set("start", e.start);
  out.set("wall", e.wall);
  out.set("cpu", e.cpu);
  out.set("flops", static_cast<std::int64_t>(e.flops));
  out.set("msgs", static_cast<std::int64_t>(e.msgs));
  out.set("bytes", static_cast<std::int64_t>(e.bytes));
  out.set("parent", static_cast<std::int64_t>(e.parent));
  out.set("depth", static_cast<std::int64_t>(e.depth));
  out.set("tid", static_cast<std::int64_t>(e.tid));
  return out;
}

}  // namespace

Json metrics_to_json(const std::vector<RankMetrics>& ranks) {
  Json doc = Json::object();
  doc.set("schema", kMetricsSchema);
  doc.set("nranks", static_cast<std::int64_t>(ranks.size()));

  Json jranks = Json::array();
  std::map<std::string, double> counter_totals;
  for (const RankMetrics& rm : ranks) {
    Json jr = Json::object();
    jr.set("rank", static_cast<std::int64_t>(rm.rank));
    jr.set("counters", map_to_json(rm.counters));
    jr.set("gauges", map_to_json(rm.gauges));
    Json hists = Json::object();
    for (const auto& [name, h] : rm.histograms) hists.set(name, hist_to_json(h));
    jr.set("histograms", std::move(hists));
    Json spans = Json::array();
    for (const SpanEvent& e : rm.spans) spans.push_back(span_to_json(e));
    jr.set("spans", std::move(spans));
    jranks.push_back(std::move(jr));
    for (const auto& [name, v] : rm.counters) counter_totals[name] += v;
  }
  doc.set("ranks", std::move(jranks));

  Json totals = Json::object();
  totals.set("counters", map_to_json(counter_totals));
  doc.set("totals", std::move(totals));
  return doc;
}

namespace {

std::map<std::string, double> json_to_map(const Json& obj) {
  std::map<std::string, double> out;
  for (const std::string& key : obj.keys()) out[key] = obj.at(key).as_double();
  return out;
}

Histogram json_to_hist(const Json& obj) {
  std::uint64_t buckets[Histogram::kBuckets] = {};
  for (const Json& pair : obj.at("buckets").items()) {
    const auto b = pair.at(std::size_t{0}).as_int();
    PKIFMM_CHECK(b >= 0 && b < Histogram::kBuckets);
    buckets[b] = static_cast<std::uint64_t>(pair.at(std::size_t{1}).as_int());
  }
  return Histogram::from_parts(
      static_cast<std::uint64_t>(obj.at("count").as_int()),
      obj.at("sum").as_double(), obj.at("min").as_double(),
      obj.at("max").as_double(), buckets);
}

SpanEvent json_to_span(const Json& obj) {
  SpanEvent e;
  e.name = obj.at("name").as_string();
  e.start = obj.at("start").as_double();
  e.wall = obj.at("wall").as_double();
  e.cpu = obj.at("cpu").as_double();
  e.flops = static_cast<std::uint64_t>(obj.at("flops").as_int());
  e.msgs = static_cast<std::uint64_t>(obj.at("msgs").as_int());
  e.bytes = static_cast<std::uint64_t>(obj.at("bytes").as_int());
  e.parent = static_cast<std::int32_t>(obj.at("parent").as_int());
  e.depth = static_cast<std::int32_t>(obj.at("depth").as_int());
  // tid is optional: documents written before the TaskPool worker spans
  // existed carry only the rank thread (tid 0).
  if (obj.contains("tid"))
    e.tid = static_cast<std::int32_t>(obj.at("tid").as_int());
  return e;
}

}  // namespace

std::vector<RankMetrics> metrics_from_json(const Json& doc) {
  validate_metrics_json(doc);
  std::vector<RankMetrics> out;
  for (const Json& jr : doc.at("ranks").items()) {
    RankMetrics rm;
    rm.rank = static_cast<int>(jr.at("rank").as_int());
    rm.counters = json_to_map(jr.at("counters"));
    rm.gauges = json_to_map(jr.at("gauges"));
    const Json& hists = jr.at("histograms");
    for (const std::string& name : hists.keys())
      rm.histograms[name] = json_to_hist(hists.at(name));
    for (const Json& js : jr.at("spans").items())
      rm.spans.push_back(json_to_span(js));
    out.push_back(std::move(rm));
  }
  return out;
}

void validate_metrics_json(const Json& doc) {
  PKIFMM_CHECK_MSG(doc.type() == Json::Type::kObject,
                   "metrics document must be a JSON object");
  PKIFMM_CHECK_MSG(doc.contains("schema") &&
                       doc.at("schema").as_string() == kMetricsSchema,
                   "unknown metrics schema");
  PKIFMM_CHECK(doc.contains("nranks"));
  PKIFMM_CHECK(doc.contains("ranks"));
  PKIFMM_CHECK(doc.contains("totals"));
  const Json& ranks = doc.at("ranks");
  PKIFMM_CHECK_MSG(ranks.type() == Json::Type::kArray &&
                       static_cast<std::int64_t>(ranks.size()) ==
                           doc.at("nranks").as_int(),
                   "nranks does not match ranks[] length");
  for (const Json& jr : ranks.items()) {
    for (const char* field :
         {"rank", "counters", "gauges", "histograms", "spans"})
      PKIFMM_CHECK_MSG(jr.contains(field),
                       "rank entry missing '" << field << "'");
    std::int64_t nspans = static_cast<std::int64_t>(jr.at("spans").size());
    for (const Json& js : jr.at("spans").items()) {
      for (const char* field : {"name", "start", "wall", "cpu", "flops",
                                "msgs", "bytes", "parent", "depth"})
        PKIFMM_CHECK_MSG(js.contains(field),
                         "span entry missing '" << field << "'");
      const std::int64_t parent = js.at("parent").as_int();
      PKIFMM_CHECK_MSG(parent >= -1 && parent < nspans,
                       "span parent index out of range");
      PKIFMM_CHECK_MSG(js.at("wall").as_double() >= 0.0 &&
                           js.at("cpu").as_double() >= 0.0,
                       "span durations must be nonnegative");
    }
  }
}

Json chrome_trace_json(const std::vector<RankMetrics>& ranks) {
  Json events = Json::array();
  for (const RankMetrics& rm : ranks) {
    // One *process* per rank (pid = rank): per-rank trace files can be
    // concatenated and still render as separate labeled rows of one
    // timeline in chrome://tracing / Perfetto, which key everything by
    // (pid, tid). The rank's recorder epoch (published as the
    // "obs.epoch" gauge) shifts span starts onto the shared process
    // clock so rows from different ranks align.
    auto eit = rm.gauges.find("obs.epoch");
    const double epoch = eit == rm.gauges.end() ? 0.0 : eit->second;
    Json pmeta = Json::object();
    pmeta.set("name", "process_name");
    pmeta.set("ph", "M");
    pmeta.set("pid", static_cast<std::int64_t>(rm.rank));
    pmeta.set("tid", std::int64_t{0});
    Json pargs = Json::object();
    pargs.set("name", "rank " + std::to_string(rm.rank));
    pmeta.set("args", std::move(pargs));
    events.push_back(std::move(pmeta));

    // One *thread* row per intra-rank tid: tid 0 is the rank thread,
    // tids >= 1 are the TaskPool worker lanes whose burst spans were
    // folded in via Recorder::record_span.
    std::set<std::int32_t> tids{0};
    for (const SpanEvent& e : rm.spans) tids.insert(e.tid);
    for (const std::int32_t tid : tids) {
      Json meta = Json::object();
      meta.set("name", "thread_name");
      meta.set("ph", "M");
      meta.set("pid", static_cast<std::int64_t>(rm.rank));
      meta.set("tid", static_cast<std::int64_t>(tid));
      Json margs = Json::object();
      margs.set("name", tid == 0 ? "rank " + std::to_string(rm.rank)
                                 : "worker " + std::to_string(tid));
      meta.set("args", std::move(margs));
      events.push_back(std::move(meta));
    }

    for (const SpanEvent& e : rm.spans) {
      Json ev = Json::object();
      ev.set("name", e.name);
      ev.set("ph", "X");
      ev.set("pid", static_cast<std::int64_t>(rm.rank));
      ev.set("tid", static_cast<std::int64_t>(e.tid));
      ev.set("ts", (epoch + e.start) * 1e6);  // microseconds
      ev.set("dur", e.wall * 1e6);
      Json args = Json::object();
      args.set("cpu_s", e.cpu);
      args.set("flops", static_cast<std::int64_t>(e.flops));
      args.set("msgs", static_cast<std::int64_t>(e.msgs));
      args.set("bytes", static_cast<std::int64_t>(e.bytes));
      ev.set("args", std::move(args));
      events.push_back(std::move(ev));
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

void write_metrics_json(const std::string& path,
                        const std::vector<RankMetrics>& ranks) {
  Json doc = metrics_to_json(ranks);
  validate_metrics_json(doc);
  write_json_file(path, doc);
}

void write_chrome_trace(const std::string& path,
                        const std::vector<RankMetrics>& ranks) {
  write_json_file(path, chrome_trace_json(ranks));
}

}  // namespace pkifmm::obs
