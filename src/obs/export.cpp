#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace pkifmm::obs {

namespace {

Json hist_to_json(const Histogram& h) {
  Json out = Json::object();
  out.set("count", static_cast<std::int64_t>(h.count()));
  out.set("sum", h.sum());
  out.set("min", h.min());
  out.set("max", h.max());
  Json buckets = Json::array();
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (h.buckets()[b] == 0) continue;
    Json pair = Json::array();
    pair.push_back(Json(static_cast<std::int64_t>(b)));
    pair.push_back(Json(static_cast<std::int64_t>(h.buckets()[b])));
    buckets.push_back(std::move(pair));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

Json map_to_json(const std::map<std::string, double>& m) {
  Json out = Json::object();
  for (const auto& [name, v] : m) out.set(name, v);
  return out;
}

Json span_to_json(const SpanEvent& e) {
  Json out = Json::object();
  out.set("name", e.name);
  out.set("start", e.start);
  out.set("wall", e.wall);
  out.set("cpu", e.cpu);
  out.set("flops", static_cast<std::int64_t>(e.flops));
  out.set("msgs", static_cast<std::int64_t>(e.msgs));
  out.set("bytes", static_cast<std::int64_t>(e.bytes));
  out.set("parent", static_cast<std::int64_t>(e.parent));
  out.set("depth", static_cast<std::int64_t>(e.depth));
  out.set("tid", static_cast<std::int64_t>(e.tid));
  return out;
}

/// Compact array form (schema comment in export.hpp): one row per
/// FlowEvent keeps metrics.json from exploding at 10^4+ messages.
Json flow_to_json(const FlowEvent& e) {
  Json row = Json::array();
  row.push_back(Json(static_cast<std::int64_t>(e.kind)));
  row.push_back(Json(static_cast<std::int64_t>(e.peer)));
  row.push_back(Json(static_cast<std::int64_t>(e.tag)));
  row.push_back(Json(static_cast<std::int64_t>(e.seq)));
  row.push_back(Json(static_cast<std::int64_t>(e.phase)));
  row.push_back(Json(e.bytes));
  row.push_back(Json(e.t0));
  row.push_back(Json(e.t1));
  return row;
}

}  // namespace

Json metrics_to_json(const std::vector<RankMetrics>& ranks) {
  Json doc = Json::object();
  doc.set("schema", kMetricsSchema);
  doc.set("nranks", static_cast<std::int64_t>(ranks.size()));

  Json jranks = Json::array();
  std::map<std::string, double> counter_totals;
  for (const RankMetrics& rm : ranks) {
    Json jr = Json::object();
    jr.set("rank", static_cast<std::int64_t>(rm.rank));
    jr.set("counters", map_to_json(rm.counters));
    jr.set("gauges", map_to_json(rm.gauges));
    Json hists = Json::object();
    for (const auto& [name, h] : rm.histograms) hists.set(name, hist_to_json(h));
    jr.set("histograms", std::move(hists));
    Json spans = Json::array();
    for (const SpanEvent& e : rm.spans) spans.push_back(span_to_json(e));
    jr.set("spans", std::move(spans));
    if (!rm.flows.empty() || !rm.flow_phases.empty()) {
      Json flows = Json::array();
      for (const FlowEvent& e : rm.flows) flows.push_back(flow_to_json(e));
      jr.set("flows", std::move(flows));
      Json phases = Json::array();
      for (const std::string& p : rm.flow_phases) phases.push_back(Json(p));
      jr.set("flow_phases", std::move(phases));
    }
    jranks.push_back(std::move(jr));
    for (const auto& [name, v] : rm.counters) counter_totals[name] += v;
  }
  doc.set("ranks", std::move(jranks));

  Json totals = Json::object();
  totals.set("counters", map_to_json(counter_totals));
  doc.set("totals", std::move(totals));
  return doc;
}

namespace {

std::map<std::string, double> json_to_map(const Json& obj) {
  std::map<std::string, double> out;
  for (const std::string& key : obj.keys()) out[key] = obj.at(key).as_double();
  return out;
}

Histogram json_to_hist(const Json& obj) {
  std::uint64_t buckets[Histogram::kBuckets] = {};
  for (const Json& pair : obj.at("buckets").items()) {
    const auto b = pair.at(std::size_t{0}).as_int();
    PKIFMM_CHECK(b >= 0 && b < Histogram::kBuckets);
    buckets[b] = static_cast<std::uint64_t>(pair.at(std::size_t{1}).as_int());
  }
  return Histogram::from_parts(
      static_cast<std::uint64_t>(obj.at("count").as_int()),
      obj.at("sum").as_double(), obj.at("min").as_double(),
      obj.at("max").as_double(), buckets);
}

SpanEvent json_to_span(const Json& obj) {
  SpanEvent e;
  e.name = obj.at("name").as_string();
  e.start = obj.at("start").as_double();
  e.wall = obj.at("wall").as_double();
  e.cpu = obj.at("cpu").as_double();
  e.flops = static_cast<std::uint64_t>(obj.at("flops").as_int());
  e.msgs = static_cast<std::uint64_t>(obj.at("msgs").as_int());
  e.bytes = static_cast<std::uint64_t>(obj.at("bytes").as_int());
  e.parent = static_cast<std::int32_t>(obj.at("parent").as_int());
  e.depth = static_cast<std::int32_t>(obj.at("depth").as_int());
  // tid is optional: documents written before the TaskPool worker spans
  // existed carry only the rank thread (tid 0).
  if (obj.contains("tid"))
    e.tid = static_cast<std::int32_t>(obj.at("tid").as_int());
  return e;
}

}  // namespace

std::vector<RankMetrics> metrics_from_json(const Json& doc) {
  validate_metrics_json(doc);
  std::vector<RankMetrics> out;
  for (const Json& jr : doc.at("ranks").items()) {
    RankMetrics rm;
    rm.rank = static_cast<int>(jr.at("rank").as_int());
    rm.counters = json_to_map(jr.at("counters"));
    rm.gauges = json_to_map(jr.at("gauges"));
    const Json& hists = jr.at("histograms");
    for (const std::string& name : hists.keys())
      rm.histograms[name] = json_to_hist(hists.at(name));
    for (const Json& js : jr.at("spans").items())
      rm.spans.push_back(json_to_span(js));
    // flows/flow_phases are optional: present only for --flow-trace runs.
    if (jr.contains("flows")) {
      for (const Json& jf : jr.at("flows").items()) {
        FlowEvent e;
        e.kind = static_cast<std::int32_t>(jf.at(std::size_t{0}).as_int());
        e.peer = static_cast<std::int32_t>(jf.at(std::size_t{1}).as_int());
        e.tag = static_cast<std::int32_t>(jf.at(std::size_t{2}).as_int());
        e.seq = static_cast<std::int32_t>(jf.at(std::size_t{3}).as_int());
        e.phase = static_cast<std::int32_t>(jf.at(std::size_t{4}).as_int());
        e.bytes = jf.at(std::size_t{5}).as_int();
        e.t0 = jf.at(std::size_t{6}).as_double();
        e.t1 = jf.at(std::size_t{7}).as_double();
        rm.flows.push_back(e);
      }
      for (const Json& jp : jr.at("flow_phases").items())
        rm.flow_phases.push_back(jp.as_string());
    }
    out.push_back(std::move(rm));
  }
  return out;
}

void validate_metrics_json(const Json& doc) {
  PKIFMM_CHECK_MSG(doc.type() == Json::Type::kObject,
                   "metrics document must be a JSON object");
  PKIFMM_CHECK_MSG(doc.contains("schema") &&
                       doc.at("schema").as_string() == kMetricsSchema,
                   "unknown metrics schema");
  PKIFMM_CHECK(doc.contains("nranks"));
  PKIFMM_CHECK(doc.contains("ranks"));
  PKIFMM_CHECK(doc.contains("totals"));
  const Json& ranks = doc.at("ranks");
  PKIFMM_CHECK_MSG(ranks.type() == Json::Type::kArray &&
                       static_cast<std::int64_t>(ranks.size()) ==
                           doc.at("nranks").as_int(),
                   "nranks does not match ranks[] length");
  for (const Json& jr : ranks.items()) {
    for (const char* field :
         {"rank", "counters", "gauges", "histograms", "spans"})
      PKIFMM_CHECK_MSG(jr.contains(field),
                       "rank entry missing '" << field << "'");
    std::int64_t nspans = static_cast<std::int64_t>(jr.at("spans").size());
    for (const Json& js : jr.at("spans").items()) {
      for (const char* field : {"name", "start", "wall", "cpu", "flops",
                                "msgs", "bytes", "parent", "depth"})
        PKIFMM_CHECK_MSG(js.contains(field),
                         "span entry missing '" << field << "'");
      const std::int64_t parent = js.at("parent").as_int();
      PKIFMM_CHECK_MSG(parent >= -1 && parent < nspans,
                       "span parent index out of range");
      PKIFMM_CHECK_MSG(js.at("wall").as_double() >= 0.0 &&
                           js.at("cpu").as_double() >= 0.0,
                       "span durations must be nonnegative");
    }
    if (jr.contains("flows")) {
      PKIFMM_CHECK_MSG(jr.contains("flow_phases"),
                       "rank entry has 'flows' but no 'flow_phases'");
      const std::int64_t nphases =
          static_cast<std::int64_t>(jr.at("flow_phases").size());
      for (const Json& jf : jr.at("flows").items()) {
        PKIFMM_CHECK_MSG(jf.type() == Json::Type::kArray && jf.size() == 8,
                         "flow row must be an 8-element array");
        const std::int64_t kind = jf.at(std::size_t{0}).as_int();
        PKIFMM_CHECK_MSG(kind >= 0 && kind <= 2,
                         "flow kind out of range");
        const std::int64_t phase = jf.at(std::size_t{4}).as_int();
        PKIFMM_CHECK_MSG(phase >= 0 && phase < nphases,
                         "flow phase index out of range");
        PKIFMM_CHECK_MSG(jf.at(std::size_t{3}).as_int() >= 0,
                         "exported flow seq must be assigned (>= 0)");
      }
    }
  }
}

Json chrome_trace_json(const std::vector<RankMetrics>& ranks) {
  Json events = Json::array();
  for (const RankMetrics& rm : ranks) {
    // One *process* per rank (pid = rank): per-rank trace files can be
    // concatenated and still render as separate labeled rows of one
    // timeline in chrome://tracing / Perfetto, which key everything by
    // (pid, tid). The rank's recorder epoch (published as the
    // "obs.epoch" gauge) shifts span starts onto the shared process
    // clock so rows from different ranks align.
    auto eit = rm.gauges.find("obs.epoch");
    const double epoch = eit == rm.gauges.end() ? 0.0 : eit->second;
    Json pmeta = Json::object();
    pmeta.set("name", "process_name");
    pmeta.set("ph", "M");
    pmeta.set("pid", static_cast<std::int64_t>(rm.rank));
    pmeta.set("tid", std::int64_t{0});
    Json pargs = Json::object();
    pargs.set("name", "rank " + std::to_string(rm.rank));
    pmeta.set("args", std::move(pargs));
    events.push_back(std::move(pmeta));

    // One *thread* row per intra-rank tid: tid 0 is the rank thread,
    // tids >= 1 are the TaskPool worker lanes whose burst spans were
    // folded in via Recorder::record_span.
    std::set<std::int32_t> tids{0};
    for (const SpanEvent& e : rm.spans) tids.insert(e.tid);
    for (const std::int32_t tid : tids) {
      Json meta = Json::object();
      meta.set("name", "thread_name");
      meta.set("ph", "M");
      meta.set("pid", static_cast<std::int64_t>(rm.rank));
      meta.set("tid", static_cast<std::int64_t>(tid));
      Json margs = Json::object();
      margs.set("name", tid == 0 ? "rank " + std::to_string(rm.rank)
                                 : "worker " + std::to_string(tid));
      meta.set("args", std::move(margs));
      events.push_back(std::move(meta));
    }

    for (const SpanEvent& e : rm.spans) {
      Json ev = Json::object();
      ev.set("name", e.name);
      ev.set("ph", "X");
      ev.set("pid", static_cast<std::int64_t>(rm.rank));
      ev.set("tid", static_cast<std::int64_t>(e.tid));
      ev.set("ts", (epoch + e.start) * 1e6);  // microseconds
      ev.set("dur", e.wall * 1e6);
      Json args = Json::object();
      args.set("cpu_s", e.cpu);
      args.set("flops", static_cast<std::int64_t>(e.flops));
      args.set("msgs", static_cast<std::int64_t>(e.msgs));
      args.set("bytes", static_cast<std::int64_t>(e.bytes));
      ev.set("args", std::move(args));
      events.push_back(std::move(ev));
    }

    // Flow arrows: the id "f:<src>:<dst>:<tag>:<seq>" is built from
    // rank-symmetric fields, so the sender's "s" and the receiver's
    // "f" — emitted from two different RankMetrics — agree without
    // any cross-rank coordination. All comm happens on the rank
    // thread, so both endpoints sit on tid 0 where the phase slices
    // give Perfetto an enclosing slice to attach the arrow to.
    for (const FlowEvent& e : rm.flows) {
      const bool is_send = e.kind == FlowEvent::kSend;
      const int src = is_send ? rm.rank : e.peer;
      const int dst = is_send ? e.peer : rm.rank;
      Json ev = Json::object();
      ev.set("name", "msg");
      ev.set("cat", "flow");
      ev.set("ph", is_send ? "s" : "f");
      if (!is_send) ev.set("bp", "e");  // bind to enclosing slice
      ev.set("id", "f:" + std::to_string(src) + ":" + std::to_string(dst) +
                       ":" + std::to_string(e.tag) + ":" +
                       std::to_string(e.seq));
      ev.set("pid", static_cast<std::int64_t>(rm.rank));
      ev.set("tid", std::int64_t{0});
      ev.set("ts", (epoch + (is_send ? e.t0 : e.t1)) * 1e6);
      Json args = Json::object();
      args.set("bytes", e.bytes);
      if (static_cast<std::size_t>(e.phase) < rm.flow_phases.size())
        args.set("phase", rm.flow_phases[static_cast<std::size_t>(e.phase)]);
      ev.set("args", std::move(args));
      events.push_back(std::move(ev));

      if (e.kind == FlowEvent::kRecvBlocked) {
        Json w = Json::object();
        const std::string phase =
            static_cast<std::size_t>(e.phase) < rm.flow_phases.size()
                ? rm.flow_phases[static_cast<std::size_t>(e.phase)]
                : "default";
        w.set("name", "wait." + phase);
        w.set("cat", "wait");
        w.set("ph", "X");
        w.set("pid", static_cast<std::int64_t>(rm.rank));
        w.set("tid", std::int64_t{0});
        w.set("ts", (epoch + e.t0) * 1e6);
        w.set("dur", (e.t1 - e.t0) * 1e6);
        Json wargs = Json::object();
        wargs.set("src", static_cast<std::int64_t>(e.peer));
        wargs.set("tag", static_cast<std::int64_t>(e.tag));
        wargs.set("bytes", e.bytes);
        w.set("args", std::move(wargs));
        events.push_back(std::move(w));
      }
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

Json merge_chrome_traces(const std::vector<Json>& runs) {
  // Stride = max pid count over ALL runs: derived, not fixed, so a
  // 2^20-rank run can no longer bleed into run 1's pid range.
  std::int64_t stride = 1;
  for (const Json& run : runs)
    for (const Json& ev : run.at("traceEvents").items())
      if (ev.contains("pid")) stride = std::max(stride, ev.at("pid").as_int() + 1);

  Json events = Json::array();
  for (std::size_t k = 0; k < runs.size(); ++k) {
    const std::int64_t shift = static_cast<std::int64_t>(k) * stride;
    for (const Json& ev : runs[k].at("traceEvents").items()) {
      Json out = ev;  // value copy; override the run-scoped fields
      if (ev.contains("pid")) out.set("pid", ev.at("pid").as_int() + shift);
      // Flow-event ids are only unique within one run; prefix with the
      // run ordinal so arrows never link across repetitions.
      if (ev.contains("id"))
        out.set("id", "r" + std::to_string(k) + ":" +
                          ev.at("id").as_string());
      if (ev.contains("ph") && ev.at("ph").as_string() == "M" &&
          ev.at("name").as_string() == "process_name") {
        Json args = Json::object();
        args.set("name", "run" + std::to_string(k) + " " +
                             ev.at("args").at("name").as_string());
        out.set("args", std::move(args));
      }
      events.push_back(std::move(out));
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

void write_metrics_json(const std::string& path,
                        const std::vector<RankMetrics>& ranks) {
  Json doc = metrics_to_json(ranks);
  validate_metrics_json(doc);
  write_json_file(path, doc);
}

void write_chrome_trace(const std::string& path,
                        const std::vector<RankMetrics>& ranks) {
  write_json_file(path, chrome_trace_json(ranks));
}

}  // namespace pkifmm::obs
