#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>

namespace pkifmm::obs {

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double wall_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

void Histogram::observe(double v) {
  PKIFMM_DCHECK(v >= 0.0);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  int b = 0;
  if (v > 1.0)
    b = std::clamp(static_cast<int>(std::ceil(std::log2(v))), 1, kBuckets - 1);
  ++buckets_[b];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
}

Histogram Histogram::from_parts(std::uint64_t count, double sum, double min,
                                double max,
                                const std::uint64_t (&buckets)[kBuckets]) {
  Histogram h;
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  std::copy(buckets, buckets + kBuckets, h.buckets_);
  return h;
}

bool Histogram::operator==(const Histogram& other) const {
  return count_ == other.count_ && sum_ == other.sum_ &&
         min_ == other.min_ && max_ == other.max_ &&
         std::equal(buckets_, buckets_ + kBuckets, other.buckets_);
}

double RankMetrics::child_wall_sum(std::size_t i) const {
  double total = 0.0;
  for (const SpanEvent& e : spans)
    if (e.parent == static_cast<std::int32_t>(i)) total += e.wall;
  return total;
}

std::size_t Recorder::open_span(std::string name) {
  SpanEvent e;
  e.name = std::move(name);
  e.start = wall_seconds() - epoch_;
  e.parent = open_.empty() ? -1
                           : static_cast<std::int32_t>(open_.back().idx);
  e.depth = static_cast<std::int32_t>(open_.size());
  const std::size_t idx = metrics_.spans.size();
  metrics_.spans.push_back(std::move(e));
  OpenSpan o{idx, thread_cpu_seconds(), flops_total_, msgs_total_,
             bytes_total_, HwSample{}, 0};
  if (hw_) {
    o.hw0 = hw_->read();
    o.rss0 = peak_rss_bytes();
  }
  open_.push_back(o);
  return idx;
}

const SpanEvent& Recorder::close_span(std::size_t idx) {
  PKIFMM_CHECK_MSG(!open_.empty() && open_.back().idx == idx,
                   "spans must close innermost-first");
  const OpenSpan o = open_.back();
  open_.pop_back();
  SpanEvent& e = metrics_.spans[idx];
  e.wall = wall_seconds() - epoch_ - e.start;
  e.cpu = thread_cpu_seconds() - o.cpu_start;
  e.flops = flops_total_ - o.flops0;
  e.msgs = msgs_total_ - o.msgs0;
  e.bytes = bytes_total_ - o.bytes0;
  if (hw_) fold_hw(e.name, o);
  return e;
}

/// Folds the hardware-counter and peak-RSS deltas across a closing
/// span into flat counters keyed by the span name. Parent spans fold
/// their own (inclusive) deltas under their own name — like the
/// span-level flops/bytes, and unlike the `time.*` prefix hierarchy —
/// so consumers must match phase names exactly, never prefix-sum
/// `hw.*` or `mem.*`.
void Recorder::fold_hw(const std::string& name, const OpenSpan& o) {
  const HwSample h1 = hw_->read();
  const HwSample& h0 = o.hw0;
  const std::uint32_t f = hw_->fields();
  auto fold = [&](const char* suffix, std::uint64_t now,
                  std::uint64_t then) {
    // Counter fds can wrap or reset on some kernels; clamp at zero.
    if (now > then)
      metrics_.counters["hw." + name + suffix] +=
          static_cast<double>(now - then);
    else
      metrics_.counters["hw." + name + suffix];  // materialize at 0
  };
  if (f & kHwCycles) fold(".cycles", h1.cycles, h0.cycles);
  if (f & kHwInstructions)
    fold(".instructions", h1.instructions, h0.instructions);
  if (f & kHwL1dMisses) fold(".l1d_misses", h1.l1d_misses, h0.l1d_misses);
  if (f & kHwLlcMisses) fold(".llc_misses", h1.llc_misses, h0.llc_misses);
  if (f & kHwBranchMisses)
    fold(".branch_misses", h1.branch_misses, h0.branch_misses);
  fold(".minor_faults", h1.minor_faults, h0.minor_faults);
  fold(".major_faults", h1.major_faults, h0.major_faults);
  fold(".ctx_switches", h1.ctx_switches, h0.ctx_switches);
  const std::uint64_t peak1 = peak_rss_bytes();
  metrics_.counters["mem." + name + ".peak_rss_delta_bytes"] +=
      peak1 > o.rss0 ? static_cast<double>(peak1 - o.rss0) : 0.0;
}

void Recorder::record_flows(const std::vector<FlowEvent>& flows,
                            const std::vector<std::string>& phases) {
  std::vector<std::int32_t> remap(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    auto it = std::find(metrics_.flow_phases.begin(),
                        metrics_.flow_phases.end(), phases[i]);
    if (it == metrics_.flow_phases.end()) {
      remap[i] = static_cast<std::int32_t>(metrics_.flow_phases.size());
      metrics_.flow_phases.push_back(phases[i]);
    } else {
      remap[i] =
          static_cast<std::int32_t>(it - metrics_.flow_phases.begin());
    }
  }
  metrics_.flows.reserve(metrics_.flows.size() + flows.size());
  for (FlowEvent e : flows) {
    PKIFMM_DCHECK(e.phase >= 0 &&
                  static_cast<std::size_t>(e.phase) < phases.size());
    e.phase = remap[static_cast<std::size_t>(e.phase)];
    metrics_.flows.push_back(e);
  }
}

Recorder& Registry::recorder(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& r = recorders_[rank];
  if (!r) r = std::make_unique<Recorder>(rank);
  return *r;
}

std::vector<RankMetrics> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RankMetrics> out;
  out.reserve(recorders_.size());
  for (const auto& [rank, rec] : recorders_) out.push_back(rec->snapshot());
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  recorders_.clear();
}

Registry& Registry::global() {
  static Registry g;
  return g;
}

}  // namespace pkifmm::obs
