#include "util/timer.hpp"

namespace pkifmm {

double thread_cpu_seconds() { return obs::thread_cpu_seconds(); }

}  // namespace pkifmm
