#include "util/timer.hpp"

#include <ctime>

namespace pkifmm {

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace pkifmm
