#pragma once
/// \file flops.hpp
/// \brief Per-phase floating-point-operation accounting.
///
/// The paper's Table II and Fig. 5 report flops per phase and per
/// process. Rather than sampling hardware counters (unavailable in the
/// simulated setting), every compute routine in pkifmm reports its
/// arithmetic work analytically to the rank-local FlopCounter; the model
/// constants per kernel interaction live in kernels/kernel.hpp.

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace pkifmm {

/// Rank-local flop accounting keyed by phase name. Not thread-safe by
/// design: one instance per simulated rank. A bound obs::Recorder
/// additionally attributes every report to the currently-open spans,
/// which is how the trace gets per-stage flops.
class FlopCounter {
 public:
  void add(const std::string& phase, std::uint64_t flops) {
    phases_[phase] += flops;
    total_ += flops;
    if (rec_ != nullptr) rec_->add_flops(flops);
  }

  /// Binds the per-rank recorder for span flop attribution.
  void bind(obs::Recorder* rec) { rec_ = rec; }

  std::uint64_t get(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0 : it->second;
  }

  std::uint64_t total() const { return total_; }

  const std::map<std::string, std::uint64_t>& phases() const {
    return phases_;
  }

  void clear() {
    phases_.clear();
    total_ = 0;
  }

 private:
  std::map<std::string, std::uint64_t> phases_;
  std::uint64_t total_ = 0;
  obs::Recorder* rec_ = nullptr;
};

}  // namespace pkifmm
