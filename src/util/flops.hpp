#pragma once
/// \file flops.hpp
/// \brief Per-phase floating-point-operation accounting.
///
/// The paper's Table II and Fig. 5 report flops per phase and per
/// process. Rather than sampling hardware counters (unavailable in the
/// simulated setting), every compute routine in pkifmm reports its
/// arithmetic work analytically to the rank-local FlopCounter; the model
/// constants per kernel interaction live in kernels/kernel.hpp.

#include <cstdint>
#include <map>
#include <string>

namespace pkifmm {

/// Rank-local flop accounting keyed by phase name. Not thread-safe by
/// design: one instance per simulated rank.
class FlopCounter {
 public:
  void add(const std::string& phase, std::uint64_t flops) {
    phases_[phase] += flops;
    total_ += flops;
  }

  std::uint64_t get(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0 : it->second;
  }

  std::uint64_t total() const { return total_; }

  const std::map<std::string, std::uint64_t>& phases() const {
    return phases_;
  }

  void clear() {
    phases_.clear();
    total_ = 0;
  }

 private:
  std::map<std::string, std::uint64_t> phases_;
  std::uint64_t total_ = 0;
};

}  // namespace pkifmm
