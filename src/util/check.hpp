#pragma once
/// \file check.hpp
/// \brief Lightweight runtime checks used across pkifmm.
///
/// PKIFMM_CHECK is active in all build types (these guard algorithmic
/// invariants whose violation would silently corrupt results), while
/// PKIFMM_DCHECK compiles out in release builds and is meant for
/// hot paths.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pkifmm {

/// Thrown when a PKIFMM_CHECK fails. Using an exception (rather than
/// abort) lets tests assert on failure paths.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "pkifmm check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace pkifmm

#define PKIFMM_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr))                                                           \
      ::pkifmm::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
  } while (0)

#define PKIFMM_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pkifmm_check_os;                                  \
      pkifmm_check_os << msg;                                              \
      ::pkifmm::detail::check_failed(#expr, __FILE__, __LINE__,            \
                                     pkifmm_check_os.str());               \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define PKIFMM_DCHECK(expr) ((void)0)
#else
#define PKIFMM_DCHECK(expr) PKIFMM_CHECK(expr)
#endif
