#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing and named phase accumulation.
///
/// The paper reports per-phase wall-clock times (Table II, Figs. 3-4).
/// PhaseTimer accumulates named intervals so the driver can report the
/// same breakdown (Upward, U-list, V-list, W-list, X-list, Downward,
/// Comm, ...).

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace pkifmm {

/// Monotonic wall-clock stopwatch, seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU time in seconds (excludes time blocked on condition
/// variables). With simulated ranks sharing physical cores, this — not
/// wall time — measures the work a rank actually performed, and is what
/// the benches combine with the interconnect model to produce per-rank
/// "cluster" times.
double thread_cpu_seconds();

/// Accumulates wall and thread-CPU time into named phases. Not
/// thread-safe: each simulated rank owns its own PhaseTimer.
class PhaseTimer {
 public:
  /// RAII scope that adds its lifetime to the named phase.
  class Scope {
   public:
    Scope(PhaseTimer& owner, std::string name)
        : owner_(owner), name_(std::move(name)),
          cpu_start_(thread_cpu_seconds()) {}
    ~Scope() {
      owner_.add(name_, timer_.seconds(),
                 thread_cpu_seconds() - cpu_start_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimer& owner_;
    std::string name_;
    Timer timer_;
    double cpu_start_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  void add(const std::string& name, double wall_seconds,
           double cpu_seconds = 0.0) {
    phases_[name] += wall_seconds;
    cpu_phases_[name] += cpu_seconds;
  }

  double get(const std::string& name) const {
    auto it = phases_.find(name);
    return it == phases_.end() ? 0.0 : it->second;
  }

  double get_cpu(const std::string& name) const {
    auto it = cpu_phases_.find(name);
    return it == cpu_phases_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, double>& phases() const { return phases_; }
  const std::map<std::string, double>& cpu_phases() const {
    return cpu_phases_;
  }

  void clear() {
    phases_.clear();
    cpu_phases_.clear();
  }

 private:
  std::map<std::string, double> phases_;
  std::map<std::string, double> cpu_phases_;
};

}  // namespace pkifmm
