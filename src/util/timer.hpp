#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing and named phase accumulation.
///
/// The paper reports per-phase wall-clock times (Table II, Figs. 3-4).
/// PhaseTimer accumulates named intervals so the driver can report the
/// same breakdown (Upward, U-list, V-list, W-list, X-list, Downward,
/// Comm, ...).
///
/// PhaseTimer is a thin wrapper over the obs span tracer: when a
/// recorder is bound (comm::Runtime binds one per rank), every Scope is
/// measured by exactly one obs span — the tracer is the single source
/// of truth, and the flat phase map is derived from the same
/// measurement, so trace and table can never disagree.

#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pkifmm {

/// Monotonic wall-clock stopwatch, seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU time in seconds (excludes time blocked on condition
/// variables). With simulated ranks sharing physical cores, this — not
/// wall time — measures the work a rank actually performed, and is what
/// the benches combine with the interconnect model to produce per-rank
/// "cluster" times.
double thread_cpu_seconds();

/// Accumulates wall and thread-CPU time into named phases. Not
/// thread-safe: each simulated rank owns its own PhaseTimer.
class PhaseTimer {
 public:
  /// RAII scope that adds its lifetime to the named phase. With a bound
  /// recorder the interval is measured once, by the obs span; without
  /// one (standalone PhaseTimer, e.g. in unit tests) it self-measures.
  class Scope {
   public:
    Scope(PhaseTimer& owner, std::string name)
        : owner_(owner), name_(std::move(name)) {
      if (owner_.rec_ != nullptr)
        span_.emplace(*owner_.rec_, name_);
      else
        cpu_start_ = thread_cpu_seconds();
    }
    ~Scope() {
      if (span_) {
        const auto d = span_->close();
        owner_.add(name_, d.wall, d.cpu);
      } else {
        owner_.add(name_, timer_.seconds(),
                   thread_cpu_seconds() - cpu_start_);
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimer& owner_;
    std::string name_;
    std::optional<obs::Recorder::Span> span_;
    Timer timer_;
    double cpu_start_ = 0.0;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  /// Binds the per-rank recorder; scopes then record spans too.
  void bind(obs::Recorder* rec) { rec_ = rec; }
  obs::Recorder* recorder() const { return rec_; }

  void add(const std::string& name, double wall_seconds,
           double cpu_seconds = 0.0) {
    phases_[name] += wall_seconds;
    cpu_phases_[name] += cpu_seconds;
  }

  double get(const std::string& name) const {
    auto it = phases_.find(name);
    return it == phases_.end() ? 0.0 : it->second;
  }

  double get_cpu(const std::string& name) const {
    auto it = cpu_phases_.find(name);
    return it == cpu_phases_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, double>& phases() const { return phases_; }
  const std::map<std::string, double>& cpu_phases() const {
    return cpu_phases_;
  }

  void clear() {
    phases_.clear();
    cpu_phases_.clear();
  }

 private:
  std::map<std::string, double> phases_;
  std::map<std::string, double> cpu_phases_;
  obs::Recorder* rec_ = nullptr;
};

}  // namespace pkifmm
