#pragma once
/// \file task_pool.hpp
/// \brief Intra-rank work-stealing thread pool (the paper's per-node
/// parallelism, realized on the GPU in §V, here on CPU workers).
///
/// One TaskPool per simulated rank executes the batched evaluation
/// phases of core::Evaluator in parallel and runs the independent
/// U-list (ULI) direct interactions as background tasks overlapped with
/// the far-field pipeline (Algorithm 1's ULI ‖ {VLI, XLI, WLI, D2T}
/// split — see "Data-Driven Execution of Fast Multipole Methods",
/// Ltaief & Yokota, arXiv:1203.0889, for the same restructuring).
///
/// Determinism contract (what makes thread-count-independent results
/// possible, tested by tests/test_eval_threads.cpp):
///  - the decomposition of a parallel_for into chunks depends only on
///    (n, grain) — never on the worker count or on runtime timing;
///  - every chunk writes a disjoint output range and iterates its
///    indices in ascending order, exactly as the serial loop would;
///  - reductions (flop counts) are integer sums, which are associative,
///    so any execution order yields the same total.
/// Under this contract the pool may execute chunks in any order on any
/// number of threads (including zero — inline on the caller) and the
/// outputs are bitwise identical.
///
/// Scheduling: each worker owns a deque (owner pops newest-first,
/// thieves steal oldest-first). submit() distributes tasks round-robin
/// over the worker deques; parallel_for() additionally keeps a share
/// for the calling thread, which participates until its job completes,
/// then helps steal. Workers that run dry scan the other deques, and a
/// steal is counted per task taken from a foreign deque (`sched.steals`
/// after fold_stats). With zero workers everything runs inline at the
/// join points, so a threads_per_rank=1 configuration pays no
/// synchronization cost at all.
///
/// Observability: the pool records per-worker busy time, task and
/// steal counts, queue-depth samples, and coalesced per-task "burst"
/// spans (consecutive tasks of one job on one worker become a single
/// span). fold_stats() publishes them into a rank's obs::Recorder as
/// `sched.*` counters and spans with SpanEvent::tid = worker index + 1
/// (tid 0 stays the rank thread), which the Chrome trace exporter
/// renders as one row per worker.
///
/// TaskGraph (below) layers dependency-counted task nodes on top of the
/// same deques: nodes carry an atomic remaining-dependency counter and
/// a successor list, and enqueue into the pool the instant the counter
/// hits zero ("ready-on-zero"). core::Evaluator uses it to run the FMM
/// pipeline data-driven (FmmOptions::exec_mode = kDag).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace pkifmm::util {

/// Clamps a requested per-rank worker-thread count so that
/// `threads_per_rank * nranks` never exceeds the machine's hardware
/// concurrency (simulated-rank threads and pool workers would otherwise
/// thrash each other on CI boxes). Returns the effective count (>= 1)
/// and logs one warning per process when it clamps. Tests that need
/// real interleaving on small machines bypass the guard with
/// `enforce = false` (FmmOptions::clamp_threads).
int recommended_workers(int threads_per_rank, int nranks,
                        bool enforce = true);

class TaskGraph;

class TaskPool {
 public:
  /// Spawns `workers` threads. 0 is valid: the pool degenerates to an
  /// inline executor (tasks run on the calling thread at join points).
  explicit TaskPool(int workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Reads an immutable count set before any worker thread starts (the
  /// thread vector itself still grows while early workers already run).
  int workers() const { return nworkers_; }
  /// Lanes = workers + 1: lane 0 is the calling (rank) thread, lanes
  /// 1..workers are pool threads. Per-lane scratch arrays use this.
  int lanes() const { return workers() + 1; }

  /// A handle to a set of enqueued tasks; wait() blocks (helping to
  /// drain the pool) until all of them finished and rethrows the first
  /// exception any task threw.
  class Group {
   public:
    bool done() const { return pending_.load(std::memory_order_acquire) == 0; }

   private:
    friend class TaskPool;
    std::atomic<std::uint64_t> pending_{0};
    std::mutex mu_;
    std::exception_ptr error_;
  };

  /// Enqueues fn to run on some worker (round-robin placement). `name`
  /// labels the burst span. The group tracks completion; call wait(g).
  /// fn is invoked as fn(int lane) with the executing lane id.
  void submit(Group& g, std::string name, std::function<void(int)> fn);

  /// Blocks until every task of g completed, executing queued tasks
  /// (g's or others') on the calling thread while it waits. Rethrows
  /// the first exception thrown by a task of g.
  void wait(Group& g);

  /// Deterministic parallel loop: splits [0, n) into fixed chunks of
  /// `grain` indices (the decomposition depends only on n and grain),
  /// runs fn(begin, end, lane) for every chunk, and blocks until all
  /// chunks completed. The caller participates. Exceptions propagate.
  /// With zero workers this is exactly the serial loop.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t, int)>&
                        fn,
                    const std::string& name = "par_for");

  /// Publishes the pool's scheduler statistics into a rank recorder:
  ///   sched.workers            worker-thread count (gauge)
  ///   sched.tasks              tasks executed (all lanes)
  ///   sched.steals             tasks taken from a foreign deque
  ///   sched.busy.w<k>          busy seconds of lane k
  ///   sched.lifetime_seconds   seconds since construction / last fold
  ///   sched.queue_depth        histogram of deque depth at submit
  /// and appends the coalesced burst spans of the worker lanes with
  /// tid = lane (lane 0's bursts are NOT re-emitted as spans — the rank
  /// thread's time is already measured by its PhaseTimer spans). All
  /// pool-side state is reset, so consecutive folds cover disjoint
  /// windows and the recorder's counters accumulate the true totals.
  /// Must be called from the owning rank thread with no tasks in
  /// flight.
  void fold_stats(obs::Recorder& rec);

  /// Sum of [start, end) wall-second overlap between every recorded
  /// burst span named `name` and the window [w0, w1) — how much of that
  /// job family actually executed inside the window. Used to measure
  /// ULI ‖ far-field overlap. Spans recorded since the last fold_stats.
  double busy_overlap(const std::string& name, double w0, double w1) const;

 private:
  friend class TaskGraph;

  struct Task {
    std::function<void(int)> fn;
    Group* group;  ///< null for TaskGraph nodes (they track their own)
    std::string name;
  };

  struct Burst {
    std::string name;
    double start = 0.0;
    double end = 0.0;
    double cpu = 0.0;
    int lane = 0;
  };

  /// One lane's deque + stats. Lane 0 (the caller) has a deque too so
  /// parallel_for can keep chunks close to the thread that issued them.
  struct Lane {
    std::mutex mu;
    std::deque<Task> q;
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
    double busy = 0.0;
    std::vector<Burst> bursts;
    /// Push-time depth samples of THIS lane's deque, guarded by `mu`
    /// like the deque itself (TaskGraph releases call push_task from
    /// worker threads concurrently, so a pool-wide histogram would
    /// race); fold_stats merges the lanes into sched.queue_depth.
    obs::Histogram depth;
  };

  void worker_loop(int lane);
  /// Pops a task for `lane`: own deque newest-first, then steals
  /// oldest-first from the other lanes. Returns false if all empty.
  bool try_pop(int lane, Task& out);
  void run_task(Task&& t, int lane);
  void finish_task(Group* g, std::exception_ptr err);
  /// Round-robins `t` onto a worker deque (lane 0 with no workers) and
  /// wakes one sleeper. Shared by submit() and TaskGraph enqueues.
  void push_task(Task t);

  int nworkers_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::uint64_t> ready_{0};  ///< tasks enqueued, not started
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> rr_{0};     ///< round-robin submit cursor
  double epoch_;                         ///< fold window start
};

/// A dependency-counted task DAG executed on a TaskPool.
///
/// Build phase (single-threaded, before launch()): create nodes with
/// node()/event(), wire edges with edge(pred, succ), and declare
/// external dependencies (satisfied later by signal()) with
/// external(). A *task node* carries a function that runs on some lane
/// when all its dependencies completed; an *event node* carries no
/// work — it completes inline on whichever thread releases its last
/// dependency, and exists to fan dependencies in/out cheaply.
///
/// Run phase: launch() arms the graph — every node whose dependency
/// count is already zero becomes ready and enqueues into the pool's
/// work-stealing deques (ready-on-zero; LIFO per lane, steals
/// oldest-first, exactly the TaskPool policy). signal(id) releases one
/// external dependency of `id` and is safe from any thread, before or
/// after launch (nothing fires until launch() drops the built-in
/// launch guard). wait()/wait_node() block on the calling thread,
/// helping to drain the pool while they wait, and wait() rethrows the
/// first exception any node threw once the graph drained.
///
/// Determinism: the graph adds *ordering*, never arithmetic — a
/// correct edge set makes every task's inputs final before it runs,
/// and the tasks themselves follow the TaskPool determinism contract
/// (fixed chunking, disjoint writes, ascending iteration). Completion
/// order may vary freely; outputs may not.
///
/// Observability (fold_stats): `sched.dag.*` counters — node/edge/
/// signal totals, ready-queue depth sum/samples/peak, dependency-
/// release latency (ready -> start) totals and max, and per phase
/// `sched.dag.phase.<ph>.{busy_seconds,tasks,release_wait_seconds,
/// overlap_seconds}` where overlap_seconds is the wall time phase
/// `<ph>`'s task intervals spent overlapped with ANY other phase's —
/// the attribution that shows which phases actually ran concurrently.
class TaskGraph {
 public:
  using NodeId = std::int32_t;
  static constexpr NodeId kNone = -1;

  /// `name` labels the graph in logs/metrics. The pool must outlive
  /// the graph.
  TaskGraph(TaskPool& pool, std::string name);
  /// Waits for a launched graph to drain (swallowing task errors —
  /// call wait() yourself to observe them). Callers must have
  /// delivered every declared external() signal before destruction.
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task node. `phase` groups its scheduler statistics and
  /// names its burst span; fn(lane) runs once all dependencies
  /// completed. Build-phase only.
  NodeId node(std::string phase, std::function<void(int)> fn);
  /// Adds an event node (no work; completes inline on release).
  NodeId event(std::string phase);
  /// Declares that `succ` cannot start before `pred` completed.
  /// Build-phase only.
  void edge(NodeId pred, NodeId succ);
  /// Adds `count` external dependencies to `succ`, each satisfied by
  /// one later signal(succ). Build-phase only.
  void external(NodeId succ, int count = 1);
  /// Releases one external dependency of `id`. Thread-safe; callable
  /// before or after launch(). The caller must not signal more times
  /// than external() declared.
  void signal(NodeId id);

  /// Arms the graph: dependency-free nodes become ready immediately.
  /// Exactly once; build methods are invalid afterwards.
  void launch();
  /// Blocks until `id` completed, executing queued tasks on the
  /// calling thread while waiting. The node must not be gated on an
  /// external signal the caller has yet to send (deadlock).
  void wait_node(NodeId id);
  /// Blocks until every node completed (helping like wait_node), then
  /// rethrows the first exception any task threw.
  void wait();
  /// True once `id` completed. Acquire-ordered: a true result makes
  /// the node's writes visible.
  bool completed(NodeId id) const;

  std::size_t nodes() const { return graph_nodes_.size(); }
  std::size_t edges() const { return nedges_; }

  /// Publishes the `sched.dag.*` statistics described above and
  /// resets them. Call after wait(), from the owning rank thread.
  void fold_stats(obs::Recorder& rec);

 private:
  struct Node {
    std::function<void(int)> fn;  ///< null => event node
    std::vector<NodeId> succ;
    std::atomic<int> pending{1};  ///< +1 launch guard, dropped by launch()
    std::atomic<bool> done{false};
    double ready_t = 0.0;  ///< when pending hit zero (task nodes)
    std::int32_t phase = 0;
  };
  struct PhaseStat {
    std::string name;
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> release_wait_ns{0};
    std::atomic<std::uint64_t> tasks{0};
  };
  /// One executed task interval, recorded lane-privately for the
  /// fold-time per-phase overlap computation.
  struct Interval {
    std::int32_t phase;
    double t0, t1;
  };

  std::int32_t phase_id(const std::string& phase);
  void release_dep(NodeId id);  ///< one dependency of id completed
  void enqueue(NodeId id);      ///< pending hit zero on a task node
  void run_node(NodeId id, int lane);
  void complete(NodeId id);     ///< mark done, release successors

  TaskPool& pool_;
  std::string name_;
  std::vector<std::unique_ptr<Node>> graph_nodes_;
  std::vector<std::unique_ptr<PhaseStat>> phases_;
  std::vector<std::vector<Interval>> lane_intervals_;
  std::size_t nedges_ = 0;
  bool launched_ = false;
  std::atomic<std::int64_t> remaining_{0};  ///< nodes not yet completed
  std::atomic<std::int64_t> ready_now_{0};  ///< enqueued, not started
  std::atomic<std::int64_t> ready_depth_sum_{0};
  std::atomic<std::int64_t> ready_depth_samples_{0};
  std::atomic<std::int64_t> ready_depth_peak_{0};
  std::atomic<std::uint64_t> signals_{0};
  std::atomic<std::uint64_t> release_wait_max_ns_{0};
  std::atomic<int> watchers_{0};  ///< wait_node callers needing wakeups
  std::mutex err_mu_;
  std::exception_ptr error_;
};

}  // namespace pkifmm::util
