#include "util/cli.hpp"

#include <string_view>

#include "util/check.hpp"

namespace pkifmm {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    PKIFMM_CHECK_MSG(arg.rfind("--", 0) == 0,
                     "expected --key=value argument, got '" << arg << "'");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_[std::string(arg)] = "true";
    } else {
      kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stoll(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stod(it->second);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace pkifmm
