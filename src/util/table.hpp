#pragma once
/// \file table.hpp
/// \brief ASCII table rendering for bench output.
///
/// Benches regenerate the paper's tables; Table renders rows/columns in
/// the same layout (e.g. Table II: Event | Max. Time | Avg. Time |
/// Max. Flops | Avg. Flops) with scientific-notation formatting matching
/// the paper.

#include <string>
#include <vector>

namespace pkifmm {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header underline.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats like the paper's tables: "1.37e+02".
std::string sci(double v, int precision = 2);

/// Formats a double with fixed precision, e.g. "2.15".
std::string fixed(double v, int precision = 2);

/// Human-friendly large integer, e.g. "1,048,576".
std::string with_commas(std::uint64_t v);

/// ASCII bar proportional to value/vmax, e.g. "#########.......". Used
/// by the figure benches to render the paper's bar charts in text.
std::string bar(double value, double vmax, int width = 24);

}  // namespace pkifmm
