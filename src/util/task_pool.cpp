#include "util/task_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

namespace pkifmm::util {

int recommended_workers(int threads_per_rank, int nranks, bool enforce) {
  const int req = std::max(1, threads_per_rank);
  if (!enforce) return req;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const int budget =
      std::max(1, static_cast<int>(hw) / std::max(1, nranks));
  if (req <= budget) return req;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "[pkifmm] threads_per_rank=%d x %d rank(s) oversubscribes "
                 "%u hardware thread(s); clamping to %d thread(s) per rank "
                 "(set clamp_threads=false to override)\n",
                 req, nranks, hw, budget);
  }
  return budget;
}

TaskPool::TaskPool(int workers)
    : nworkers_(std::max(0, workers)), epoch_(obs::wall_seconds()) {
  PKIFMM_CHECK(workers >= 0);
  lanes_.reserve(static_cast<std::size_t>(workers) + 1);
  for (int i = 0; i <= workers; ++i)
    lanes_.push_back(std::make_unique<Lane>());
  threads_.reserve(workers);
  for (int w = 1; w <= workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void TaskPool::submit(Group& g, std::string name,
                      std::function<void(int)> fn) {
  g.pending_.fetch_add(1, std::memory_order_relaxed);
  // Round-robin over the WORKER lanes when there are any, so background
  // tasks start without the caller's help; lane 0 otherwise.
  int lane = 0;
  if (workers() > 0)
    lane = 1 + static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                static_cast<std::uint64_t>(workers()));
  {
    std::lock_guard<std::mutex> lock(lanes_[lane]->mu);
    queue_depth_.observe(static_cast<double>(lanes_[lane]->q.size()));
    lanes_[lane]->q.push_back(Task{std::move(fn), &g, std::move(name)});
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ready_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_one();
}

void TaskPool::wait(Group& g) {
  while (!g.done()) {
    Task t;
    if (try_pop(0, t)) {
      run_task(std::move(t), 0);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return g.done() || ready_.load(std::memory_order_relaxed) > 0;
    });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(g.mu_);
    err = g.error_;
    g.error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void TaskPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, int)>& fn,
    const std::string& name) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  // Inline fast path: no workers means the serial loop, chunked the
  // same way (the chunking never depends on the worker count).
  if (workers() == 0) {
    const double t0 = obs::wall_seconds();
    const double c0 = obs::thread_cpu_seconds();
    for (std::size_t b = 0; b < n; b += grain)
      fn(b, std::min(n, b + grain), 0);
    Lane& me = *lanes_[0];
    std::lock_guard<std::mutex> lock(me.mu);
    me.tasks += (n + grain - 1) / grain;
    me.busy += obs::wall_seconds() - t0;
    Burst burst;
    burst.name = name;
    burst.start = t0;
    burst.end = obs::wall_seconds();
    burst.cpu = obs::thread_cpu_seconds() - c0;
    burst.lane = 0;
    me.bursts.push_back(std::move(burst));
    return;
  }
  Group g;
  for (std::size_t b = 0; b < n; b += grain) {
    const std::size_t e = std::min(n, b + grain);
    submit(g, name, [&fn, b, e](int lane) { fn(b, e, lane); });
  }
  wait(g);
}

bool TaskPool::try_pop(int lane, Task& out) {
  Lane& me = *lanes_[lane];
  {
    std::lock_guard<std::mutex> lock(me.mu);
    if (!me.q.empty()) {
      out = std::move(me.q.back());  // own deque: newest first (locality)
      me.q.pop_back();
      std::lock_guard<std::mutex> wl(wake_mu_);
      ready_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal oldest-first from the other lanes, scanning from the next
  // lane around the ring so thieves spread out. The victim's lock is
  // released before touching our own lane's stats — two lane mutexes
  // are never held at once (no lane-lane lock-order cycle).
  const int nl = lanes();
  for (int d = 1; d < nl; ++d) {
    const int victim = (lane + d) % nl;
    Lane& v = *lanes_[victim];
    {
      std::lock_guard<std::mutex> lock(v.mu);
      if (v.q.empty()) continue;
      out = std::move(v.q.front());
      v.q.pop_front();
    }
    {
      std::lock_guard<std::mutex> wl(wake_mu_);
      ready_.fetch_sub(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> ml(me.mu);
    ++me.steals;
    return true;
  }
  return false;
}

void TaskPool::run_task(Task&& t, int lane) {
  const double t0 = obs::wall_seconds();
  const double c0 = obs::thread_cpu_seconds();
  std::exception_ptr err;
  try {
    t.fn(lane);
  } catch (...) {
    err = std::current_exception();
  }
  const double t1 = obs::wall_seconds();
  const double c1 = obs::thread_cpu_seconds();
  {
    Lane& me = *lanes_[lane];
    std::lock_guard<std::mutex> lock(me.mu);
    ++me.tasks;
    me.busy += t1 - t0;
    // Coalesce back-to-back tasks of one job into a single burst span
    // so the trace stays small even for fine-grained chunking.
    constexpr double kGapSeconds = 100e-6;
    if (!me.bursts.empty() && me.bursts.back().name == t.name &&
        t0 - me.bursts.back().end < kGapSeconds) {
      me.bursts.back().end = t1;
      me.bursts.back().cpu += c1 - c0;
    } else {
      Burst burst;
      burst.name = t.name;
      burst.start = t0;
      burst.end = t1;
      burst.cpu = c1 - c0;
      burst.lane = lane;
      me.bursts.push_back(std::move(burst));
    }
  }
  finish_task(t.group, err);
}

void TaskPool::finish_task(Group* g, std::exception_ptr err) {
  if (err != nullptr) {
    std::lock_guard<std::mutex> lock(g->mu_);
    if (!g->error_) g->error_ = err;
  }
  if (g->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the group: wake any waiter. The empty critical
    // section pairs with the waiter's predicate check under wake_mu_.
    { std::lock_guard<std::mutex> lock(wake_mu_); }
    wake_cv_.notify_all();
  }
}

void TaskPool::worker_loop(int lane) {
  for (;;) {
    Task t;
    if (try_pop(lane, t)) {
      run_task(std::move(t), lane);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             ready_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        ready_.load(std::memory_order_relaxed) == 0)
      return;
  }
}

void TaskPool::fold_stats(obs::Recorder& rec) {
  const double now = obs::wall_seconds();
  rec.gauge_set("sched.workers", static_cast<double>(workers()));
  rec.counter_add("sched.lifetime_seconds", now - epoch_);
  double tasks = 0.0, steals = 0.0;
  for (int lane = 0; lane < lanes(); ++lane) {
    Lane& l = *lanes_[lane];
    std::lock_guard<std::mutex> lock(l.mu);
    tasks += static_cast<double>(l.tasks);
    steals += static_cast<double>(l.steals);
    rec.counter_add("sched.busy.w" + std::to_string(lane), l.busy);
    for (const Burst& b : l.bursts) {
      if (b.lane == 0) continue;  // rank thread: PhaseTimer spans own it
      obs::SpanEvent e;
      e.name = b.name;
      e.start = b.start - rec.epoch();
      e.wall = b.end - b.start;
      e.cpu = b.cpu;
      e.tid = b.lane;
      rec.record_span(std::move(e));
    }
    l.tasks = 0;
    l.steals = 0;
    l.busy = 0.0;
    l.bursts.clear();
  }
  rec.counter_add("sched.tasks", tasks);
  rec.counter_add("sched.steals", steals);
  rec.histogram("sched.queue_depth")->merge(queue_depth_);
  queue_depth_ = obs::Histogram();
  epoch_ = now;
}

double TaskPool::busy_overlap(const std::string& name, double w0,
                              double w1) const {
  double total = 0.0;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    for (const Burst& b : lane->bursts) {
      if (b.name != name) continue;
      const double lo = std::max(b.start, w0);
      const double hi = std::min(b.end, w1);
      if (hi > lo) total += hi - lo;
    }
  }
  return total;
}

}  // namespace pkifmm::util
