#include "util/task_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

namespace pkifmm::util {

int recommended_workers(int threads_per_rank, int nranks, bool enforce) {
  const int req = std::max(1, threads_per_rank);
  if (!enforce) return req;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const int budget =
      std::max(1, static_cast<int>(hw) / std::max(1, nranks));
  if (req <= budget) return req;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "[pkifmm] threads_per_rank=%d x %d rank(s) oversubscribes "
                 "%u hardware thread(s); clamping to %d thread(s) per rank "
                 "(set clamp_threads=false to override)\n",
                 req, nranks, hw, budget);
  }
  return budget;
}

TaskPool::TaskPool(int workers)
    : nworkers_(std::max(0, workers)), epoch_(obs::wall_seconds()) {
  PKIFMM_CHECK(workers >= 0);
  lanes_.reserve(static_cast<std::size_t>(workers) + 1);
  for (int i = 0; i <= workers; ++i)
    lanes_.push_back(std::make_unique<Lane>());
  threads_.reserve(workers);
  for (int w = 1; w <= workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void TaskPool::submit(Group& g, std::string name,
                      std::function<void(int)> fn) {
  g.pending_.fetch_add(1, std::memory_order_relaxed);
  push_task(Task{std::move(fn), &g, std::move(name)});
}

void TaskPool::push_task(Task t) {
  // Round-robin over the WORKER lanes when there are any, so background
  // tasks start without the caller's help; lane 0 otherwise.
  int lane = 0;
  if (workers() > 0)
    lane = 1 + static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                static_cast<std::uint64_t>(workers()));
  {
    std::lock_guard<std::mutex> lock(lanes_[lane]->mu);
    lanes_[lane]->depth.observe(static_cast<double>(lanes_[lane]->q.size()));
    lanes_[lane]->q.push_back(std::move(t));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ready_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_one();
}

void TaskPool::wait(Group& g) {
  while (!g.done()) {
    Task t;
    if (try_pop(0, t)) {
      run_task(std::move(t), 0);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return g.done() || ready_.load(std::memory_order_relaxed) > 0;
    });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(g.mu_);
    err = g.error_;
    g.error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void TaskPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, int)>& fn,
    const std::string& name) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  // Inline fast path: no workers means the serial loop, chunked the
  // same way (the chunking never depends on the worker count).
  if (workers() == 0) {
    const double t0 = obs::wall_seconds();
    const double c0 = obs::thread_cpu_seconds();
    for (std::size_t b = 0; b < n; b += grain)
      fn(b, std::min(n, b + grain), 0);
    Lane& me = *lanes_[0];
    std::lock_guard<std::mutex> lock(me.mu);
    me.tasks += (n + grain - 1) / grain;
    me.busy += obs::wall_seconds() - t0;
    Burst burst;
    burst.name = name;
    burst.start = t0;
    burst.end = obs::wall_seconds();
    burst.cpu = obs::thread_cpu_seconds() - c0;
    burst.lane = 0;
    me.bursts.push_back(std::move(burst));
    return;
  }
  Group g;
  for (std::size_t b = 0; b < n; b += grain) {
    const std::size_t e = std::min(n, b + grain);
    submit(g, name, [&fn, b, e](int lane) { fn(b, e, lane); });
  }
  wait(g);
}

bool TaskPool::try_pop(int lane, Task& out) {
  Lane& me = *lanes_[lane];
  {
    std::lock_guard<std::mutex> lock(me.mu);
    if (!me.q.empty()) {
      out = std::move(me.q.back());  // own deque: newest first (locality)
      me.q.pop_back();
      std::lock_guard<std::mutex> wl(wake_mu_);
      ready_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal oldest-first from the other lanes, scanning from the next
  // lane around the ring so thieves spread out. The victim's lock is
  // released before touching our own lane's stats — two lane mutexes
  // are never held at once (no lane-lane lock-order cycle).
  const int nl = lanes();
  for (int d = 1; d < nl; ++d) {
    const int victim = (lane + d) % nl;
    Lane& v = *lanes_[victim];
    {
      std::lock_guard<std::mutex> lock(v.mu);
      if (v.q.empty()) continue;
      out = std::move(v.q.front());
      v.q.pop_front();
    }
    {
      std::lock_guard<std::mutex> wl(wake_mu_);
      ready_.fetch_sub(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> ml(me.mu);
    ++me.steals;
    return true;
  }
  return false;
}

void TaskPool::run_task(Task&& t, int lane) {
  const double t0 = obs::wall_seconds();
  const double c0 = obs::thread_cpu_seconds();
  std::exception_ptr err;
  try {
    t.fn(lane);
  } catch (...) {
    err = std::current_exception();
  }
  const double t1 = obs::wall_seconds();
  const double c1 = obs::thread_cpu_seconds();
  {
    Lane& me = *lanes_[lane];
    std::lock_guard<std::mutex> lock(me.mu);
    ++me.tasks;
    me.busy += t1 - t0;
    // Coalesce back-to-back tasks of one job into a single burst span
    // so the trace stays small even for fine-grained chunking.
    constexpr double kGapSeconds = 100e-6;
    if (!me.bursts.empty() && me.bursts.back().name == t.name &&
        t0 - me.bursts.back().end < kGapSeconds) {
      me.bursts.back().end = t1;
      me.bursts.back().cpu += c1 - c0;
    } else {
      Burst burst;
      burst.name = t.name;
      burst.start = t0;
      burst.end = t1;
      burst.cpu = c1 - c0;
      burst.lane = lane;
      me.bursts.push_back(std::move(burst));
    }
  }
  finish_task(t.group, err);
}

void TaskPool::finish_task(Group* g, std::exception_ptr err) {
  // TaskGraph nodes run groupless: their wrapper owns completion and
  // error capture (TaskGraph::run_node), so there is nothing to do.
  if (g == nullptr) return;
  if (err != nullptr) {
    std::lock_guard<std::mutex> lock(g->mu_);
    if (!g->error_) g->error_ = err;
  }
  if (g->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the group: wake any waiter. The empty critical
    // section pairs with the waiter's predicate check under wake_mu_.
    { std::lock_guard<std::mutex> lock(wake_mu_); }
    wake_cv_.notify_all();
  }
}

void TaskPool::worker_loop(int lane) {
  for (;;) {
    Task t;
    if (try_pop(lane, t)) {
      run_task(std::move(t), lane);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             ready_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        ready_.load(std::memory_order_relaxed) == 0)
      return;
  }
}

void TaskPool::fold_stats(obs::Recorder& rec) {
  const double now = obs::wall_seconds();
  rec.gauge_set("sched.workers", static_cast<double>(workers()));
  rec.counter_add("sched.lifetime_seconds", now - epoch_);
  double tasks = 0.0, steals = 0.0;
  for (int lane = 0; lane < lanes(); ++lane) {
    Lane& l = *lanes_[lane];
    std::lock_guard<std::mutex> lock(l.mu);
    tasks += static_cast<double>(l.tasks);
    steals += static_cast<double>(l.steals);
    rec.counter_add("sched.busy.w" + std::to_string(lane), l.busy);
    for (const Burst& b : l.bursts) {
      if (b.lane == 0) continue;  // rank thread: PhaseTimer spans own it
      obs::SpanEvent e;
      e.name = b.name;
      e.start = b.start - rec.epoch();
      e.wall = b.end - b.start;
      e.cpu = b.cpu;
      e.tid = b.lane;
      rec.record_span(std::move(e));
    }
    rec.histogram("sched.queue_depth")->merge(l.depth);
    l.depth = obs::Histogram();
    l.tasks = 0;
    l.steals = 0;
    l.busy = 0.0;
    l.bursts.clear();
  }
  rec.counter_add("sched.tasks", tasks);
  rec.counter_add("sched.steals", steals);
  epoch_ = now;
}

double TaskPool::busy_overlap(const std::string& name, double w0,
                              double w1) const {
  double total = 0.0;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    for (const Burst& b : lane->bursts) {
      if (b.name != name) continue;
      const double lo = std::max(b.start, w0);
      const double hi = std::min(b.end, w1);
      if (hi > lo) total += hi - lo;
    }
  }
  return total;
}

namespace {

using IntervalList = std::vector<std::pair<double, double>>;

/// Sorts and merges [t0, t1) intervals in place into a disjoint union.
void merge_intervals(IntervalList& v) {
  std::sort(v.begin(), v.end());
  std::size_t out = 0;
  for (const auto& iv : v) {
    if (out > 0 && iv.first <= v[out - 1].second)
      v[out - 1].second = std::max(v[out - 1].second, iv.second);
    else
      v[out++] = iv;
  }
  v.resize(out);
}

/// Total seconds the two disjoint-union lists intersect.
double intersect_seconds(const IntervalList& a, const IntervalList& b) {
  double total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second)
      ++i;
    else
      ++j;
  }
  return total;
}

template <class T>
void atomic_store_max(std::atomic<T>& a, T v) {
  T cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

TaskGraph::TaskGraph(TaskPool& pool, std::string name)
    : pool_(pool), name_(std::move(name)) {
  lane_intervals_.resize(static_cast<std::size_t>(pool_.lanes()));
}

TaskGraph::~TaskGraph() {
  if (!launched_) return;
  try {
    wait();
  } catch (...) {
    // Task errors are observable via an explicit wait(); destruction
    // must only guarantee no node still references this graph.
  }
}

std::int32_t TaskGraph::phase_id(const std::string& phase) {
  // Linear scan: graphs carry ~10 phases, and this is build-time only.
  for (std::size_t i = 0; i < phases_.size(); ++i)
    if (phases_[i]->name == phase) return static_cast<std::int32_t>(i);
  phases_.push_back(std::make_unique<PhaseStat>());
  phases_.back()->name = phase;
  return static_cast<std::int32_t>(phases_.size() - 1);
}

TaskGraph::NodeId TaskGraph::node(std::string phase,
                                  std::function<void(int)> fn) {
  PKIFMM_CHECK(!launched_);
  auto n = std::make_unique<Node>();
  n->fn = std::move(fn);
  n->phase = phase_id(phase);
  graph_nodes_.push_back(std::move(n));
  return static_cast<NodeId>(graph_nodes_.size() - 1);
}

TaskGraph::NodeId TaskGraph::event(std::string phase) {
  return node(std::move(phase), nullptr);
}

void TaskGraph::edge(NodeId pred, NodeId succ) {
  PKIFMM_CHECK(!launched_);
  PKIFMM_CHECK(pred >= 0 &&
               pred < static_cast<NodeId>(graph_nodes_.size()));
  PKIFMM_CHECK(succ >= 0 &&
               succ < static_cast<NodeId>(graph_nodes_.size()));
  PKIFMM_CHECK(pred != succ);
  graph_nodes_[static_cast<std::size_t>(pred)]->succ.push_back(succ);
  graph_nodes_[static_cast<std::size_t>(succ)]->pending.fetch_add(
      1, std::memory_order_relaxed);
  ++nedges_;
}

void TaskGraph::external(NodeId succ, int count) {
  PKIFMM_CHECK(!launched_);
  PKIFMM_CHECK(succ >= 0 &&
               succ < static_cast<NodeId>(graph_nodes_.size()));
  PKIFMM_CHECK(count >= 0);
  graph_nodes_[static_cast<std::size_t>(succ)]->pending.fetch_add(
      count, std::memory_order_relaxed);
}

void TaskGraph::signal(NodeId id) {
  PKIFMM_CHECK(id >= 0 && id < static_cast<NodeId>(graph_nodes_.size()));
  signals_.fetch_add(1, std::memory_order_relaxed);
  release_dep(id);
}

void TaskGraph::launch() {
  PKIFMM_CHECK(!launched_);
  launched_ = true;
  remaining_.store(static_cast<std::int64_t>(graph_nodes_.size()),
                   std::memory_order_release);
  // Drop every node's construction guard. Early nodes may fire, run,
  // and release successors while later guards are still being dropped;
  // each node's OWN guard keeps it from firing before its turn here.
  for (NodeId id = 0; id < static_cast<NodeId>(graph_nodes_.size()); ++id)
    release_dep(id);
}

void TaskGraph::release_dep(NodeId id) {
  Node& n = *graph_nodes_[static_cast<std::size_t>(id)];
  if (n.pending.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (!n.fn) {
    complete(id);  // event node: completes inline on the releaser
    return;
  }
  enqueue(id);
}

void TaskGraph::enqueue(NodeId id) {
  Node& n = *graph_nodes_[static_cast<std::size_t>(id)];
  // ready_t is published to the executing thread by the deque mutex
  // inside push_task (written before push, read after pop).
  n.ready_t = obs::wall_seconds();
  const std::int64_t depth =
      ready_now_.fetch_add(1, std::memory_order_relaxed) + 1;
  ready_depth_sum_.fetch_add(depth, std::memory_order_relaxed);
  ready_depth_samples_.fetch_add(1, std::memory_order_relaxed);
  atomic_store_max(ready_depth_peak_, depth);
  pool_.push_task(TaskPool::Task{
      [this, id](int lane) { run_node(id, lane); }, nullptr,
      phases_[static_cast<std::size_t>(n.phase)]->name});
}

void TaskGraph::run_node(NodeId id, int lane) {
  Node& n = *graph_nodes_[static_cast<std::size_t>(id)];
  PhaseStat& ps = *phases_[static_cast<std::size_t>(n.phase)];
  const double t0 = obs::wall_seconds();
  ready_now_.fetch_sub(1, std::memory_order_relaxed);
  const auto waited_ns = static_cast<std::uint64_t>(
      std::max(0.0, t0 - n.ready_t) * 1e9);
  ps.release_wait_ns.fetch_add(waited_ns, std::memory_order_relaxed);
  atomic_store_max(release_wait_max_ns_, waited_ns);
  try {
    n.fn(lane);
  } catch (...) {
    std::lock_guard<std::mutex> lock(err_mu_);
    if (!error_) error_ = std::current_exception();
  }
  const double t1 = obs::wall_seconds();
  ps.busy_ns.fetch_add(static_cast<std::uint64_t>((t1 - t0) * 1e9),
                       std::memory_order_relaxed);
  ps.tasks.fetch_add(1, std::memory_order_relaxed);
  lane_intervals_[static_cast<std::size_t>(lane)].push_back(
      Interval{n.phase, t0, t1});
  complete(id);
}

void TaskGraph::complete(NodeId id) {
  Node& n = *graph_nodes_[static_cast<std::size_t>(id)];
  // seq_cst store: pairs Dekker-style with the watcher's seq_cst
  // watchers_ increment + done load in wait_node — either the
  // completer sees the watcher (and notifies), or the watcher sees
  // done (and never sleeps).
  n.done.store(true);
  for (const NodeId s : n.succ) release_dep(s);
  // Read watchers_ BEFORE the remaining_ decrement: the decrement that
  // takes remaining_ to zero releases wait(), after which the graph may
  // be destroyed, so no graph member may be touched past it (pool_
  // outlives the graph, so the wake below is safe either way). The
  // seq_cst load still follows the done store, preserving the Dekker
  // pairing with wait_node.
  const bool watched = watchers_.load() > 0;
  TaskPool& pool = pool_;  // local: pool_ is graph memory too
  const std::int64_t left =
      remaining_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (left == 0 || watched) {
    // The empty critical section pairs with the waiters' predicate
    // check under wake_mu_ (same protocol as Group completion).
    { std::lock_guard<std::mutex> lock(pool.wake_mu_); }
    pool.wake_cv_.notify_all();
  }
}

bool TaskGraph::completed(NodeId id) const {
  PKIFMM_CHECK(id >= 0 && id < static_cast<NodeId>(graph_nodes_.size()));
  return graph_nodes_[static_cast<std::size_t>(id)]->done.load(
      std::memory_order_acquire);
}

void TaskGraph::wait_node(NodeId id) {
  PKIFMM_CHECK(launched_);
  PKIFMM_CHECK(id >= 0 && id < static_cast<NodeId>(graph_nodes_.size()));
  Node& n = *graph_nodes_[static_cast<std::size_t>(id)];
  watchers_.fetch_add(1);  // seq_cst: see complete()
  while (!n.done.load()) {
    TaskPool::Task t;
    if (pool_.try_pop(0, t)) {
      pool_.run_task(std::move(t), 0);
      continue;
    }
    std::unique_lock<std::mutex> lock(pool_.wake_mu_);
    pool_.wake_cv_.wait(lock, [&] {
      return n.done.load() ||
             pool_.ready_.load(std::memory_order_relaxed) > 0;
    });
  }
  watchers_.fetch_sub(1);
}

void TaskGraph::wait() {
  PKIFMM_CHECK(launched_);
  while (remaining_.load(std::memory_order_acquire) > 0) {
    TaskPool::Task t;
    if (pool_.try_pop(0, t)) {
      pool_.run_task(std::move(t), 0);
      continue;
    }
    std::unique_lock<std::mutex> lock(pool_.wake_mu_);
    pool_.wake_cv_.wait(lock, [&] {
      return remaining_.load(std::memory_order_acquire) == 0 ||
             pool_.ready_.load(std::memory_order_relaxed) > 0;
    });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void TaskGraph::fold_stats(obs::Recorder& rec) {
  // Quiescent by contract (wait() returned), so plain reads are fine.
  rec.counter_add("sched.dag.graphs", 1.0);
  rec.counter_add("sched.dag.nodes",
                  static_cast<double>(graph_nodes_.size()));
  rec.counter_add("sched.dag.edges", static_cast<double>(nedges_));
  rec.counter_add("sched.dag.signals",
                  static_cast<double>(signals_.load()));
  rec.counter_add("sched.dag.ready_depth_sum",
                  static_cast<double>(ready_depth_sum_.load()));
  rec.counter_add("sched.dag.ready_depth_samples",
                  static_cast<double>(ready_depth_samples_.load()));
  // Gauges keep the max across graphs/folds (gauge_set is last-write).
  const auto& gauges = rec.metrics().gauges;
  auto gauge_max = [&](const std::string& name, double v) {
    const auto it = gauges.find(name);
    if (it != gauges.end()) v = std::max(v, it->second);
    rec.gauge_set(name, v);
  };
  gauge_max("sched.dag.ready_depth_peak",
            static_cast<double>(ready_depth_peak_.load()));
  gauge_max("sched.dag.release_wait_max_seconds",
            static_cast<double>(release_wait_max_ns_.load()) * 1e-9);

  // Per-phase busy/stall totals plus overlap attribution: how much of
  // phase P's executed wall time was concurrent with ANY other phase.
  std::vector<IntervalList> by_phase(phases_.size());
  for (const auto& lane : lane_intervals_)
    for (const Interval& iv : lane)
      by_phase[static_cast<std::size_t>(iv.phase)].push_back(
          {iv.t0, iv.t1});
  for (IntervalList& v : by_phase) merge_intervals(v);
  double tasks_total = 0.0, release_total = 0.0;
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    const PhaseStat& ps = *phases_[p];
    IntervalList others;
    for (std::size_t q = 0; q < phases_.size(); ++q)
      if (q != p)
        others.insert(others.end(), by_phase[q].begin(), by_phase[q].end());
    merge_intervals(others);
    const std::string base = "sched.dag.phase." + ps.name;
    rec.counter_add(base + ".busy_seconds",
                    static_cast<double>(ps.busy_ns.load()) * 1e-9);
    rec.counter_add(base + ".tasks",
                    static_cast<double>(ps.tasks.load()));
    rec.counter_add(base + ".release_wait_seconds",
                    static_cast<double>(ps.release_wait_ns.load()) * 1e-9);
    rec.counter_add(base + ".overlap_seconds",
                    intersect_seconds(by_phase[p], others));
    tasks_total += static_cast<double>(ps.tasks.load());
    release_total += static_cast<double>(ps.release_wait_ns.load()) * 1e-9;
  }
  rec.counter_add("sched.dag.tasks", tasks_total);
  rec.counter_add("sched.dag.release_wait_seconds", release_total);
  for (auto& lane : lane_intervals_) lane.clear();
}

}  // namespace pkifmm::util
