#pragma once
/// \file stats.hpp
/// \brief Small statistics helpers for per-rank metric aggregation.
///
/// The paper reports "Max" and "Avg" across processes for every phase
/// (Table II); Summary computes exactly those reductions over a vector
/// of per-rank values.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>

#include "util/check.hpp"

namespace pkifmm {

/// Max/avg/min/stddev over a set of per-rank samples.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double avg = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;

  static Summary of(std::span<const double> xs) {
    Summary s;
    s.count = xs.size();
    if (xs.empty()) return s;
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());
    s.avg = std::accumulate(xs.begin(), xs.end(), 0.0) /
            static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs) var += (x - s.avg) * (x - s.avg);
    s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
    return s;
  }

  /// Load imbalance ratio: max/avg (1.0 = perfectly balanced). Defined
  /// only when the mean is finite and nonzero; for an empty set, an
  /// all-zero metric, or a degenerate (inf/nan) mean the ratio carries
  /// no information and 1.0 ("balanced") is reported instead of a
  /// misleading quotient. Samples may be signed: a negative mean yields
  /// max/avg as-is (callers aggregating signed gauges get the raw
  /// ratio, not a silently clamped one).
  double imbalance() const {
    if (!has_imbalance()) return 1.0;
    return max / avg;
  }

  /// True when the imbalance ratio is actually defined (nonempty set,
  /// finite nonzero mean). JSON emitters omit the "imbalance" field
  /// when this is false — a reader must not see a fabricated 1.0 for a
  /// phase that never ran (zero-wall) and mistake it for "measured and
  /// perfectly balanced".
  bool has_imbalance() const {
    return count > 0 && avg != 0.0 && std::isfinite(avg);
  }
};

/// Online mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  /// Combines another accumulator into this one (Chan et al.'s
  /// parallel Welford update): the result is identical — up to
  /// floating-point reassociation — to having add()ed both sample
  /// streams into a single accumulator. This is what cross-rank
  /// aggregation uses to fold per-rank (or per-run) accumulators into
  /// one summary without revisiting the samples.
  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double d = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    mean_ += d * nb / (na + nb);
    m2_ += other.m2_ + d * d * na * nb / (na + nb);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { PKIFMM_CHECK(n_ > 0); return min_; }
  double max() const { PKIFMM_CHECK(n_ > 0); return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Relative L2 error between an approximate and a reference vector,
/// ||a - r||_2 / ||r||_2. This is the accuracy metric used in the FMM
/// literature when comparing against direct summation.
inline double rel_l2_error(std::span<const double> approx,
                           std::span<const double> ref) {
  PKIFMM_CHECK(approx.size() == ref.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = approx[i] - ref[i];
    num += d * d;
    den += ref[i] * ref[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace pkifmm
