#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace pkifmm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PKIFMM_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PKIFMM_CHECK_MSG(cells.size() == header_.size(),
                   "row arity " << cells.size() << " != header arity "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string bar(double value, double vmax, int width) {
  if (vmax <= 0.0) return std::string(width, '.');
  int filled = static_cast<int>(value / vmax * width + 0.5);
  filled = std::max(0, std::min(filled, width));
  return std::string(filled, '#') + std::string(width - filled, '.');
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace pkifmm
