#pragma once
/// \file rng.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// All pkifmm experiments must be reproducible bit-for-bit across runs,
/// so we use an explicit xoshiro256++ generator seeded from a SplitMix64
/// stream rather than std::random_device. Each simulated rank derives an
/// independent stream from (seed, rank).

#include <cstdint>

namespace pkifmm {

/// SplitMix64 — used only to expand a user seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna), public-domain algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Independent stream for a given rank. Both words go through a full
  /// SplitMix64 avalanche before the state expansion: the previous
  /// `seed ^ (c * (rank+1))` derivation was linear in (seed, rank), so
  /// distinct pairs could collide or leave correlated state; after
  /// mixing, a collision requires a generic 2^-64 hash collision.
  Rng(std::uint64_t seed, int rank) : Rng(mix_seed_rank(seed, rank)) {}

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t mix_seed_rank(std::uint64_t seed, int rank) {
    SplitMix64 first(seed);
    SplitMix64 second(first.next() + static_cast<std::uint64_t>(rank));
    return second.next();
  }

  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pkifmm
