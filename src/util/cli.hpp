#pragma once
/// \file cli.hpp
/// \brief Minimal --key=value command-line parsing for benches/examples.

#include <cstdint>
#include <map>
#include <string>

namespace pkifmm {

/// Parses arguments of the form --key=value (or bare --flag, stored as
/// "true"). Unrecognized positional arguments raise a CheckFailure.
class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace pkifmm
