#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pkifmm::la {

namespace {

/// One-sided Jacobi on the columns of W (m x n, m >= n assumed by the
/// caller). On exit the columns of W are U_i * sigma_i and V accumulates
/// the rotations.
void jacobi_sweeps(Matrix& w, Matrix& v) {
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  const double eps = 1e-15;
  const int max_sweeps = 60;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Column inner products.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          app += wp * wp;
          aqq += wq * wq;
          apq += wp * wq;
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq)) continue;
        converged = false;

        // Jacobi rotation that zeroes the (p,q) inner product.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }
}

}  // namespace

Svd svd(const Matrix& a) {
  PKIFMM_CHECK(!a.empty());
  const bool transpose = a.rows() < a.cols();
  Matrix w = transpose ? a.transposed() : a;
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();

  Matrix v = identity(n);
  jacobi_sweeps(w, v);

  // Extract singular values (column norms) and normalize U's columns.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(norm);
  }

  // Sort descending by singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return sigma[i] > sigma[j]; });

  Svd out;
  out.sigma.resize(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    out.sigma[jj] = sigma[j];
    const double inv = sigma[j] > 0.0 ? 1.0 / sigma[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) out.u(i, jj) = w(i, j) * inv;
    for (std::size_t i = 0; i < n; ++i) out.v(i, jj) = v(i, j);
  }

  if (transpose) std::swap(out.u, out.v);
  return out;
}

Matrix pinv(const Matrix& a, double rel_cutoff) {
  Svd s = svd(a);
  const double smax = s.sigma.empty() ? 0.0 : s.sigma.front();
  const double cutoff = smax * rel_cutoff;

  // pinv(A) = V diag(1/sigma) U^T over the retained spectrum.
  const std::size_t k = s.sigma.size();
  Matrix vs(a.cols(), k);
  for (std::size_t j = 0; j < k; ++j) {
    const double inv = s.sigma[j] > cutoff ? 1.0 / s.sigma[j] : 0.0;
    for (std::size_t i = 0; i < a.cols(); ++i) vs(i, j) = s.v(i, j) * inv;
  }
  return gemm(vs, s.u.transposed());
}

}  // namespace pkifmm::la
