#include "la/matrix.hpp"

#include <cmath>

namespace pkifmm::la {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

void gemv_acc(const Matrix& a, std::span<const double> x,
              std::span<double> y, double alpha) {
  PKIFMM_CHECK(x.size() == a.cols() && y.size() == a.rows());
  const std::size_t n = a.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.data() + r * n;
    double acc = 0.0;
    for (std::size_t c = 0; c < n; ++c) acc += row[c] * x[c];
    y[r] += alpha * acc;
  }
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  std::fill(y.begin(), y.end(), 0.0);
  gemv_acc(a, x, y);
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  PKIFMM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // ikj loop order keeps the inner loop contiguous in both b and c.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols();
      double* crow = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix gemm_tn(const Matrix& a, const Matrix& b) {
  PKIFMM_CHECK(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.data() + k * a.cols();
    const double* brow = b.data() + k * b.cols();
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

}  // namespace pkifmm::la
