#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "simd/simd.hpp"

namespace pkifmm::la {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

void gemv_acc(const Matrix& a, std::span<const double> x,
              std::span<double> y, double alpha) {
  PKIFMM_CHECK(x.size() == a.cols() && y.size() == a.rows());
  const std::size_t n = a.cols();
  // alpha scales each term (not the finished sum) so the rounding
  // matches gemm_acc and the batched engine reproduces this reference
  // path as closely as reordering allows (see tests/test_eval_modes).
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.data() + r * n;
    double acc = 0.0;
    for (std::size_t c = 0; c < n; ++c) acc += (alpha * row[c]) * x[c];
    y[r] += acc;
  }
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  std::fill(y.begin(), y.end(), 0.0);
  gemv_acc(a, x, y);
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  PKIFMM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // ikj loop order keeps the inner loop contiguous in both b and c.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols();
      double* crow = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

void gemm_acc(const Matrix& a, std::span<const double> b,
              std::span<double> c, std::size_t ncols, double alpha) {
  gemm_acc_cols(a, b, c, ncols, 0, ncols, alpha);
}

void gemm_acc_cols(const Matrix& a, std::span<const double> b,
                   std::span<double> c, std::size_t ncols, std::size_t col0,
                   std::size_t col1, double alpha) {
  PKIFMM_CHECK(b.size() == a.cols() * ncols && c.size() == a.rows() * ncols);
  PKIFMM_CHECK(col0 <= col1 && col1 <= ncols);
  if (col0 == col1 || a.empty()) return;
  // Tile the k (reduction) and j (batch-column) dimensions so the B
  // panel stays in cache while every row of A streams over it; the
  // inner loop is contiguous in both B and C. Every c[i][j] sums its
  // k terms in the same order for any column window, which is what
  // makes the parallel column split exact.
  //
  // Within a k block, nonzero terms are grouped (up to simd::kAxpynMaxK
  // at a time) and flushed through the SIMD tier's axpyn, which folds
  // the group in ascending k with one fused multiply-add each — the
  // same association as the one-row-at-a-time loop it replaces, so the
  // k grouping only changes how many times the C row streams through
  // cache, never the rounding. Zero terms are skipped BEFORE grouping,
  // matching the old per-row zero skip bitwise.
  const simd::Ops& ops = simd::ops();
  constexpr std::size_t kKBlock = 64;
  constexpr std::size_t kJBlock = 128;
  double ak[simd::kAxpynMaxK];
  const double* bk[simd::kAxpynMaxK];
  for (std::size_t j0 = col0; j0 < col1; j0 += kJBlock) {
    const std::size_t j1 = std::min(col1, j0 + kJBlock);
    for (std::size_t k0 = 0; k0 < a.cols(); k0 += kKBlock) {
      const std::size_t k1 = std::min(a.cols(), k0 + kKBlock);
      for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* arow = a.data() + i * a.cols();
        double* crow = c.data() + i * ncols;
        std::size_t nk = 0;
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = alpha * arow[k];
          if (aik == 0.0) continue;
          ak[nk] = aik;
          bk[nk] = b.data() + k * ncols + j0;
          if (++nk == simd::kAxpynMaxK) {
            ops.axpyn(ak, bk, nk, crow + j0, j1 - j0);
            nk = 0;
          }
        }
        if (nk > 0) ops.axpyn(ak, bk, nk, crow + j0, j1 - j0);
      }
    }
  }
}

void gather_columns(std::span<const double> src,
                    std::span<const std::int32_t> slots, std::size_t len,
                    std::span<double> dst) {
  const std::size_t nb = slots.size();
  PKIFMM_CHECK(dst.size() == len * nb);
  for (std::size_t j = 0; j < nb; ++j) {
    const double* col = src.data() + std::size_t(slots[j]) * len;
    for (std::size_t r = 0; r < len; ++r) dst[r * nb + j] = col[r];
  }
}

void scatter_columns_acc(std::span<const double> src,
                         std::span<const std::int32_t> slots, std::size_t len,
                         std::span<double> dst) {
  const std::size_t nb = slots.size();
  PKIFMM_CHECK(src.size() == len * nb);
  for (std::size_t j = 0; j < nb; ++j) {
    double* col = dst.data() + std::size_t(slots[j]) * len;
    for (std::size_t r = 0; r < len; ++r) col[r] += src[r * nb + j];
  }
}

Matrix gemm_tn(const Matrix& a, const Matrix& b) {
  PKIFMM_CHECK(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.data() + k * a.cols();
    const double* brow = b.data() + k * b.cols();
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

}  // namespace pkifmm::la
