#pragma once
/// \file matrix.hpp
/// \brief Dense row-major matrices and BLAS-lite operations.
///
/// The KIFMM translation operators (Table I of the paper: S, U, D, E, Q,
/// R, T) are small dense matrices (order 100-1000). This module provides
/// the storage and the handful of operations the FMM needs: gemv with
/// accumulation, gemm, transpose, and scaling. Everything is double
/// precision; the GPU path re-implements its kernels in float.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace pkifmm::la {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    PKIFMM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    PKIFMM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    PKIFMM_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    PKIFMM_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// In-place scalar multiply.
  void scale(double s) {
    for (auto& x : data_) x *= s;
  }

  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y += alpha * A x  (accumulating matrix-vector product).
void gemv_acc(const Matrix& a, std::span<const double> x,
              std::span<double> y, double alpha = 1.0);

/// y = A x.
void gemv(const Matrix& a, std::span<const double> x, std::span<double> y);

/// C = A B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// C += alpha * A B for row-major operands held in flat spans:
/// B is (a.cols() x ncols), C is (a.rows() x ncols). Cache-tiled over
/// the k and column dimensions; the batched-evaluation workhorse
/// (one call applies a translation operator to ncols octants at once).
void gemm_acc(const Matrix& a, std::span<const double> b,
              std::span<double> c, std::size_t ncols, double alpha = 1.0);

/// gemm_acc restricted to batch columns [col0, col1) of the same
/// (a.cols() x ncols) B and (a.rows() x ncols) C panels. Each output
/// column's reduction order is independent of the column blocking, so
/// splitting a gemm_acc into disjoint windows (util::TaskPool chunks)
/// reproduces the unsplit result bitwise.
void gemm_acc_cols(const Matrix& a, std::span<const double> b,
                   std::span<double> c, std::size_t ncols, std::size_t col0,
                   std::size_t col1, double alpha = 1.0);

/// Gathers per-node vectors into the column-major batch layout gemm_acc
/// consumes: dst[r*slots.size() + j] = src[slots[j]*len + r]. `src` is
/// a node-major state vector (len values per node), `slots` the node
/// indices forming the batch.
void gather_columns(std::span<const double> src,
                    std::span<const std::int32_t> slots, std::size_t len,
                    std::span<double> dst);

/// Inverse of gather_columns with accumulation:
/// dst[slots[j]*len + r] += src[r*slots.size() + j].
void scatter_columns_acc(std::span<const double> src,
                         std::span<const std::int32_t> slots, std::size_t len,
                         std::span<double> dst);

/// C = A^T B.
Matrix gemm_tn(const Matrix& a, const Matrix& b);

/// Identity matrix of order n.
Matrix identity(std::size_t n);

/// Number of flops in one gemv_acc application (2 per matrix entry).
inline std::uint64_t gemv_flops(const Matrix& a) {
  return 2ull * a.rows() * a.cols();
}

/// Number of flops in one gemm_acc application: exactly ncols gemvs, so
/// batched and per-node execution account identically.
inline std::uint64_t gemm_flops(const Matrix& a, std::size_t ncols) {
  return 2ull * a.rows() * a.cols() * ncols;
}

}  // namespace pkifmm::la
