#pragma once
/// \file svd.hpp
/// \brief One-sided Jacobi SVD and truncated pseudo-inverse.
///
/// The kernel-independent FMM converts check-surface potentials into
/// equivalent densities by applying the (Tikhonov-style truncated)
/// pseudo-inverse of the equivalent-to-check interaction matrix; that
/// matrix is mildly ill-conditioned by construction, so plain LU is not
/// an option. One-sided Jacobi is compact, accurate for small dense
/// matrices, and has no external dependencies.

#include "la/matrix.hpp"

#include <vector>

namespace pkifmm::la {

/// Thin SVD A = U diag(sigma) V^T with U: m x k, V: n x k, k = min(m,n).
/// Singular values are returned in descending order.
struct Svd {
  Matrix u;
  std::vector<double> sigma;
  Matrix v;
};

/// Computes the thin SVD via one-sided Jacobi rotations on the columns.
/// Converges to machine precision for the matrix sizes used in pkifmm
/// (up to ~1000).
Svd svd(const Matrix& a);

/// Moore-Penrose pseudo-inverse with relative singular-value cutoff:
/// singular values below rel_cutoff * sigma_max are treated as zero.
/// The FMM uses rel_cutoff ~ 1e-12 (double path).
Matrix pinv(const Matrix& a, double rel_cutoff = 1e-12);

}  // namespace pkifmm::la
