/// \file tier_scalar.cpp
/// \brief Scalar (W = 1) tier — the portable fallback and parity
/// reference. Compiled with the project's default flags only, so on a
/// baseline x86-64 (or non-x86) build this tier reproduces the
/// pre-SIMD arithmetic bitwise.

#include "simd/ops_impl.hpp"

namespace pkifmm::simd::detail {

const Ops& scalar_ops() {
  static const Ops table = impl::make_ops<ScalarPack>(Tier::kScalar, "scalar");
  return table;
}

}  // namespace pkifmm::simd::detail
