#include "simd/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define PKIFMM_SIMD_X86 1
#endif

namespace pkifmm::simd {

namespace {

bool cpu_supports(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
#ifdef PKIFMM_SIMD_X86
    case Tier::kAvx2:
      // __builtin_cpu_supports folds in the OS XSAVE state checks.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#endif
    default:
      return false;
  }
}

const Ops* table_for(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return &detail::scalar_ops();
#ifdef PKIFMM_SIMD_HAVE_AVX2_TU
    case Tier::kAvx2:
      return &detail::avx2_ops();
#endif
#ifdef PKIFMM_SIMD_HAVE_AVX512_TU
    case Tier::kAvx512:
      return &detail::avx512_ops();
#endif
    default:
      return nullptr;
  }
}

/// detect_tier() capped from above by PKIFMM_SIMD (warn-and-clamp on
/// unsupported requests, throw on unparseable values).
Tier resolve_initial_tier() {
  Tier t = detect_tier();
  if (const char* env = std::getenv("PKIFMM_SIMD")) {
    const Tier req = parse_tier(env);
    if (req < t) {
      t = req;
    } else if (req > t) {
      std::fprintf(stderr,
                   "pkifmm: PKIFMM_SIMD=%s not supported on this host/build; "
                   "using '%s'\n",
                   tier_name(req), tier_name(t));
    }
  }
  return t;
}

std::atomic<const Ops*> g_active{nullptr};

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool tier_compiled(Tier t) { return table_for(t) != nullptr; }

bool tier_supported(Tier t) { return tier_compiled(t) && cpu_supports(t); }

Tier detect_tier() {
#ifdef PKIFMM_SIMD_X86
  __builtin_cpu_init();
#endif
  Tier best = Tier::kScalar;
  for (Tier t : {Tier::kAvx2, Tier::kAvx512})
    if (tier_supported(t)) best = t;
  return best;
}

std::vector<Tier> available_tiers() {
  std::vector<Tier> out;
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512})
    if (tier_supported(t)) out.push_back(t);
  return out;
}

Tier parse_tier(const std::string& name) {
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512})
    if (name == tier_name(t)) return t;
  PKIFMM_CHECK_MSG(false, "PKIFMM_SIMD: unknown tier '"
                              << name
                              << "' (expected scalar | avx2 | avx512)");
  return Tier::kScalar;
}

const Ops& ops() {
  const Ops* p = g_active.load(std::memory_order_acquire);
  if (!p) {
    // Benign race: concurrent first calls resolve to the same table.
    p = table_for(resolve_initial_tier());
    g_active.store(p, std::memory_order_release);
  }
  return *p;
}

Tier active_tier() { return ops().tier; }

const Ops& ops_for_tier(Tier t) {
  PKIFMM_CHECK_MSG(tier_supported(t), "SIMD tier '" << tier_name(t)
                                                    << "' is not supported "
                                                       "on this host/build");
  return *table_for(t);
}

void force_tier(Tier t) {
  const Ops& table = ops_for_tier(t);
  g_active.store(&table, std::memory_order_release);
}

void clear_forced_tier() { g_active.store(nullptr, std::memory_order_release); }

}  // namespace pkifmm::simd
