#pragma once
/// \file pack.hpp
/// \brief Fixed-width lane packs: the portable vocabulary the SIMD
/// kernels in ops_impl.hpp are written against.
///
/// A pack type exposes W double lanes (`V`), a lane mask (`M`), and the
/// handful of operations the hot kernels need: broadcast, unaligned
/// load/store, fused multiply-add, sqrt/div, equality masks, and MASKED
/// load/store for tails. Three implementations exist:
///
///  - ScalarPack (W = 1): plain doubles, compiled in every build; the
///    portable fallback and the reference tier for the parity tests.
///  - Avx2Pack (W = 4): __m256d + FMA3; only defined when the
///    translation unit is compiled with -mavx2 -mfma (tier_avx2.cpp).
///  - Avx512Pack (W = 8): __m512d with native lane masks; only defined
///    under -mavx512f -mavx512dq (tier_avx512.cpp).
///
/// Each tier's translation unit is the ONLY place its pack type is
/// instantiated, so no AVX code can leak into binaries running on
/// plainer hosts (dispatch in simd.cpp checks CPUID before ever
/// calling into a vector tier).
///
/// Determinism contract (see DESIGN.md "Runtime-dispatched SIMD"):
/// masked tail operations must perform bitwise the SAME per-lane
/// arithmetic as the full-width body, so results never depend on where
/// a caller's window boundary falls — that is what keeps the
/// column-window/chunk splits of the threaded evaluator bitwise
/// reproducible for any thread count within one tier.

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace pkifmm::simd {

/// W = 1 reference pack. fmadd is written as a single expression so
/// the compiler may contract it on FMA-enabled builds; in the default
/// (baseline x86-64 / non-x86) build it is an ordinary mul + add,
/// which keeps the scalar tier bitwise identical to the pre-SIMD code.
struct ScalarPack {
  static constexpr std::size_t kWidth = 1;
  using V = double;
  using M = bool;

  static V zero() { return 0.0; }
  static V set1(double x) { return x; }
  static V loadu(const double* p) { return *p; }
  static void storeu(double* p, V v) { *p = v; }
  static V add(V a, V b) { return a + b; }
  static V sub(V a, V b) { return a - b; }
  static V mul(V a, V b) { return a * b; }
  static V div(V a, V b) { return a / b; }
  static V sqrt(V a) { return std::sqrt(a); }
  static V fmadd(V a, V b, V c) { return a * b + c; }
  /// Lanes where a == b (IEEE compare: -0 == +0, NaN != NaN).
  static M eq(V a, V b) { return a == b; }
  /// v where the mask is clear, 0.0 where it is set.
  static V zero_where(M m, V v) { return m ? 0.0 : v; }

  /// Mask with the first n (of kWidth) lanes active.
  static M tail_mask(std::size_t n) { return n == 0; }
  static V maskz_loadu(M none, const double* p) { return none ? 0.0 : *p; }
  static void mask_storeu(double* p, M none, V v) {
    if (!none) *p = v;
  }
};

#if defined(__AVX2__) && defined(__FMA__)
/// W = 4 AVX2+FMA3 pack. Masks are sign-bit vectors (VMASKMOVPD
/// semantics); tails use real masked loads/stores, not scalar loops.
struct Avx2Pack {
  static constexpr std::size_t kWidth = 4;
  using V = __m256d;
  using M = __m256d;  ///< all-ones lanes = active

  static V zero() { return _mm256_setzero_pd(); }
  static V set1(double x) { return _mm256_set1_pd(x); }
  static V loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V div(V a, V b) { return _mm256_div_pd(a, b); }
  static V sqrt(V a) { return _mm256_sqrt_pd(a); }
  static V fmadd(V a, V b, V c) { return _mm256_fmadd_pd(a, b, c); }
  static M eq(V a, V b) { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
  static V zero_where(M m, V v) { return _mm256_andnot_pd(m, v); }

  // Complex helpers over interleaved [re, im] pairs.
  static V swap_pairs(V v) { return _mm256_permute_pd(v, 0b0101); }
  static V dup_even(V v) { return _mm256_movedup_pd(v); }
  static V dup_odd(V v) { return _mm256_permute_pd(v, 0b1111); }
  /// Even lanes a*b - c, odd lanes a*b + c, single rounding each.
  static V fmaddsub(V a, V b, V c) { return _mm256_fmaddsub_pd(a, b, c); }

  static M tail_mask(std::size_t n) {
    // Lane l active iff l < n; built branch-free from a compare.
    const __m256d lane = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    return _mm256_cmp_pd(lane, _mm256_set1_pd(static_cast<double>(n)),
                         _CMP_LT_OQ);
  }
  static V maskz_loadu(M m, const double* p) {
    return _mm256_maskload_pd(p, _mm256_castpd_si256(m));
  }
  static void mask_storeu(double* p, M m, V v) {
    _mm256_maskstore_pd(p, _mm256_castpd_si256(m), v);
  }
};
#endif  // __AVX2__ && __FMA__

#if defined(__AVX512F__) && defined(__AVX512DQ__)
/// W = 8 AVX-512 pack with native k-register masks.
struct Avx512Pack {
  static constexpr std::size_t kWidth = 8;
  using V = __m512d;
  using M = __mmask8;

  static V zero() { return _mm512_setzero_pd(); }
  static V set1(double x) { return _mm512_set1_pd(x); }
  static V loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu(double* p, V v) { _mm512_storeu_pd(p, v); }
  static V add(V a, V b) { return _mm512_add_pd(a, b); }
  static V sub(V a, V b) { return _mm512_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V div(V a, V b) { return _mm512_div_pd(a, b); }
  static V sqrt(V a) { return _mm512_sqrt_pd(a); }
  static V fmadd(V a, V b, V c) { return _mm512_fmadd_pd(a, b, c); }
  static M eq(V a, V b) { return _mm512_cmp_pd_mask(a, b, _CMP_EQ_OQ); }
  static V zero_where(M m, V v) {
    return _mm512_maskz_mov_pd(static_cast<M>(~m), v);
  }

  static V swap_pairs(V v) { return _mm512_permute_pd(v, 0x55); }
  static V dup_even(V v) { return _mm512_movedup_pd(v); }
  static V dup_odd(V v) { return _mm512_permute_pd(v, 0xFF); }
  static V fmaddsub(V a, V b, V c) { return _mm512_fmaddsub_pd(a, b, c); }

  static M tail_mask(std::size_t n) {
    return static_cast<M>((1u << (n < kWidth ? n : kWidth)) - 1u);
  }
  static V maskz_loadu(M m, const double* p) {
    return _mm512_maskz_loadu_pd(m, p);
  }
  static void mask_storeu(double* p, M m, V v) {
    _mm512_mask_storeu_pd(p, m, v);
  }
};
#endif  // __AVX512F__ && __AVX512DQ__

}  // namespace pkifmm::simd
