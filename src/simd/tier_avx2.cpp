/// \file tier_avx2.cpp
/// \brief AVX2+FMA3 (W = 4) tier. This translation unit is compiled
/// with -mavx2 -mfma (see simd/CMakeLists.txt) and must stay the ONLY
/// place Avx2Pack is instantiated: the dispatcher guarantees nothing
/// here runs unless CPUID reports AVX2+FMA support.

#include "simd/ops_impl.hpp"

#if !defined(__AVX2__) || !defined(__FMA__)
#error "tier_avx2.cpp must be compiled with -mavx2 -mfma"
#endif

namespace pkifmm::simd::detail {

const Ops& avx2_ops() {
  static const Ops table = impl::make_ops<Avx2Pack>(Tier::kAvx2, "avx2");
  return table;
}

}  // namespace pkifmm::simd::detail
