#pragma once
/// \file simd.hpp
/// \brief Runtime-dispatched SIMD tiers for the per-element hot kernels.
///
/// The paper's per-node throughput comes from vector units (SSE
/// streaming of the direct and translation kernels, §4). This layer
/// reproduces that on modern x86: three tiers — scalar (portable
/// reference), AVX2+FMA (4 double lanes), AVX-512 (8 lanes) — each
/// compiled in its own translation unit with its own -m flags, selected
/// ONCE at runtime from CPUID and exposed as a table of function
/// pointers. Hot callers (kernels::Kernel::direct, la::gemm_acc_cols,
/// fft::pointwise_mac_*, fft::Fft3d::line_fft) fetch the table via
/// ops() and stay agnostic of the lane width.
///
/// Tier selection:
///  - detect_tier() returns the best tier that is BOTH compiled into
///    this binary and supported by the running CPU/OS.
///  - The PKIFMM_SIMD environment variable ("scalar" | "avx2" |
///    "avx512") caps the tier from above: requesting a LOWER tier than
///    detected forces it (the CI forced-tier parity matrix), requesting
///    an unsupported higher tier falls back to the detected one with a
///    warning on stderr — the override can therefore never SIGILL.
///    Unrecognized values throw CheckFailure (fail loud, not silent).
///  - force_tier()/clear_forced_tier() are the in-process equivalents
///    for tests (they bypass the environment but still require the
///    tier to be supported).
///
/// Numerical contract (DESIGN.md "Runtime-dispatched SIMD hot
/// kernels"): within one tier, results are bitwise deterministic for
/// any thread count and any caller window split; across tiers, results
/// agree to 1e-12 relative with exactly equal model flop counts. The
/// scalar tier reproduces the pre-SIMD code paths.

#include <cstddef>
#include <string>
#include <vector>

namespace pkifmm::simd {

enum class Tier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Max k-term block accepted by Ops::axpyn.
inline constexpr std::size_t kAxpynMaxK = 4;

/// One tier's dispatch table. All pointers are always non-null.
struct Ops {
  Tier tier;
  const char* name;   ///< "scalar" | "avx2" | "avx512"
  std::size_t width;  ///< double lanes per vector (1, 4, 8)

  /// y[j] += sum_{r < nk} a[r] * x[r][j] for j in [0, n), nk in
  /// [1, kAxpynMaxK]. The k terms fold in ascending r with one fused
  /// multiply-add each — identical association to nk successive
  /// single-row passes, so callers may block k freely.
  void (*axpyn)(const double* a, const double* const* xs, std::size_t nk,
                double* y, std::size_t n);

  /// Interleaved complex MAC: acc[i] += g[i] * f[i] for n complex
  /// values ([re, im] pairs of doubles).
  void (*cmac)(const double* g, const double* f, double* acc, std::size_t n);

  /// One radix-2 butterfly block over `half` interleaved complex
  /// values: v = b[j] * (tw[j].re, sgn * tw[j].im); b[j] = u[j] - v;
  /// u[j] = u[j] + v. tw holds forward-sign twiddles; sgn = -1 applies
  /// the inverse transform's conjugation on the fly.
  void (*fft_bfly)(double* u, double* b, const double* tw, double sgn,
                   std::size_t half);

  /// Direct-summation kernels (xyz-interleaved points; f accumulated,
  /// target-major with the kernel's natural component stride).
  /// Coincident target/source pairs contribute zero (r2 == 0 lane
  /// mask), except stokes_reg which is smooth at r = 0.
  void (*laplace)(const double* trg, std::size_t nt, const double* src,
                  std::size_t ns, const double* q, double* f);
  void (*laplace_grad)(const double* trg, std::size_t nt, const double* src,
                       std::size_t ns, const double* q, double* f);
  void (*stokes)(const double* trg, std::size_t nt, const double* src,
                 std::size_t ns, const double* q, double* f);
  void (*stokes_reg)(const double* trg, std::size_t nt, const double* src,
                     std::size_t ns, const double* q, double* f, double eps2);
};

/// "scalar" | "avx2" | "avx512".
const char* tier_name(Tier t);

/// True if the tier's translation unit is compiled into this binary.
bool tier_compiled(Tier t);

/// True if tier_compiled AND the running CPU/OS support the ISA.
bool tier_supported(Tier t);

/// Best supported tier (ignores PKIFMM_SIMD).
Tier detect_tier();

/// All supported tiers, ascending (always contains kScalar).
std::vector<Tier> available_tiers();

/// Parses "scalar" | "avx2" | "avx512"; throws CheckFailure otherwise.
Tier parse_tier(const std::string& name);

/// The active tier's dispatch table. Resolved once on first use from
/// detect_tier() capped by PKIFMM_SIMD (see file comment); later calls
/// are a single atomic load.
const Ops& ops();

/// Tier of ops().
Tier active_tier();

/// Dispatch table for one specific tier (test/bench hook); throws
/// CheckFailure if the tier is not supported on this host.
const Ops& ops_for_tier(Tier t);

/// Pins ops() to a tier until clear_forced_tier(); throws CheckFailure
/// if unsupported. Test hook — not thread-safe against concurrent
/// first-use resolution, so call it before spawning workers.
void force_tier(Tier t);

/// Reverts force_tier; the next ops() re-resolves from CPUID + env.
void clear_forced_tier();

namespace detail {
const Ops& scalar_ops();
const Ops& avx2_ops();    ///< defined only when the AVX2 TU is built
const Ops& avx512_ops();  ///< defined only when the AVX-512 TU is built
}  // namespace detail

}  // namespace pkifmm::simd
