#pragma once
/// \file ops_impl.hpp
/// \brief Single-source SIMD kernels, templated over a lane pack.
///
/// Every hot routine is written ONCE against the pack vocabulary of
/// pack.hpp and instantiated per tier in tier_{scalar,avx2,avx512}.cpp
/// (each TU compiled with its own -m flags; see simd/CMakeLists.txt).
/// make_ops<P>() assembles a tier's dispatch table.
///
/// Numerical contracts (asserted by tests/test_simd.cpp and the
/// forced-tier sweeps in test_eval_modes/test_eval_threads):
///
///  - Per-element arithmetic is identical between a tier's full-width
///    body and its masked tail, so results are bitwise independent of
///    where callers place window/chunk boundaries. This is what
///    preserves the bitwise-determinism-per-thread-count contract of
///    the threaded evaluator within one tier.
///  - Across tiers, results agree to 1e-12 relative (FMA contraction
///    and lane-width differences only; no reassociation of any
///    per-target/per-element reduction: sources are always accumulated
///    in index order, one target per lane).
///  - Flop accounting is done by the callers from analytic models, so
///    flop counts are exactly equal across tiers by construction.
///
/// The direct kernels use the exafmm-style source-tiled x
/// target-vector-lane shape: a group of P::kWidth targets is staged
/// into SoA registers, all sources stream over the group (broadcast
/// position + density), and each lane accumulates its own target's
/// potential in source order. Tail groups pad coordinates by
/// replicating the first target and simply skip the dead lanes at
/// writeback. Coincident points are suppressed branch-free with an
/// r2 == 0 lane mask — the same predicate every scalar kernel::block
/// uses (see the unified guard in kernels/kernel.cpp).

#include <cstddef>
#include <cstdint>
#include <numbers>

#include "simd/pack.hpp"
#include "simd/simd.hpp"

namespace pkifmm::simd::impl {

inline constexpr double kOneOver4Pi = 1.0 / (4.0 * std::numbers::pi);
inline constexpr double kOneOver8Pi = 1.0 / (8.0 * std::numbers::pi);

// ---------------------------------------------------------------------------
// axpyn: y[j] += sum_{r < NK} a[r] * x[r][j]  (k terms in ascending r
// order, each folded with one fmadd — the same association as NK
// successive axpy passes, so k-blocking is a pure bandwidth win).
// ---------------------------------------------------------------------------

template <class P, int NK>
void axpyn_fixed(const double* a, const double* const* xs, double* y,
                 std::size_t n) {
  typename P::V va[NK];
  for (int r = 0; r < NK; ++r) va[r] = P::set1(a[r]);
  constexpr std::size_t W = P::kWidth;
  std::size_t j = 0;
  for (; j + W <= n; j += W) {
    typename P::V acc = P::loadu(y + j);
    for (int r = 0; r < NK; ++r)
      acc = P::fmadd(va[r], P::loadu(xs[r] + j), acc);
    P::storeu(y + j, acc);
  }
  if (j < n) {
    const typename P::M m = P::tail_mask(n - j);
    typename P::V acc = P::maskz_loadu(m, y + j);
    for (int r = 0; r < NK; ++r)
      acc = P::fmadd(va[r], P::maskz_loadu(m, xs[r] + j), acc);
    P::mask_storeu(y + j, m, acc);
  }
}

template <class P>
void axpyn_t(const double* a, const double* const* xs, std::size_t nk,
             double* y, std::size_t n) {
  switch (nk) {
    case 1: axpyn_fixed<P, 1>(a, xs, y, n); break;
    case 2: axpyn_fixed<P, 2>(a, xs, y, n); break;
    case 3: axpyn_fixed<P, 3>(a, xs, y, n); break;
    case 4: axpyn_fixed<P, 4>(a, xs, y, n); break;
    default: break;  // callers pass 1..4 (kAxpynMaxK); 0 is a no-op
  }
}

// ---------------------------------------------------------------------------
// cmac: acc[i] += g[i] * f[i] over n interleaved complex values.
// Vector tiers use the dup-even/dup-odd/fmaddsub idiom (W/2 complex
// per vector); the scalar tier keeps the pre-SIMD two-product form.
// ---------------------------------------------------------------------------

template <class P>
void cmac_t(const double* g, const double* f, double* acc, std::size_t n) {
  if constexpr (P::kWidth == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      const double gr = g[2 * i], gi = g[2 * i + 1];
      const double fr = f[2 * i], fi = f[2 * i + 1];
      acc[2 * i] += gr * fr - gi * fi;
      acc[2 * i + 1] += gr * fi + gi * fr;
    }
  } else {
    constexpr std::size_t W = P::kWidth;
    const std::size_t nd = 2 * n;  // doubles
    std::size_t i = 0;
    for (; i + W <= nd; i += W) {
      const typename P::V vg = P::loadu(g + i);
      const typename P::V vf = P::loadu(f + i);
      const typename P::V t = P::mul(P::dup_odd(vg), P::swap_pairs(vf));
      const typename P::V r = P::fmaddsub(P::dup_even(vg), vf, t);
      P::storeu(acc + i, P::add(P::loadu(acc + i), r));
    }
    if (i < nd) {
      // Complex values are pairs of doubles, so the remainder is even
      // and the in-pair shuffles never cross the mask edge.
      const typename P::M m = P::tail_mask(nd - i);
      const typename P::V vg = P::maskz_loadu(m, g + i);
      const typename P::V vf = P::maskz_loadu(m, f + i);
      const typename P::V t = P::mul(P::dup_odd(vg), P::swap_pairs(vf));
      const typename P::V r = P::fmaddsub(P::dup_even(vg), vf, t);
      P::mask_storeu(acc + i, m, P::add(P::maskz_loadu(m, acc + i), r));
    }
  }
}

// ---------------------------------------------------------------------------
// fft_bfly: one radix-2 butterfly block, v = b * w (w = twiddle with
// sgn applied to its imaginary part), b = u - v, u = u + v, over
// `half` interleaved complex values. The complex product reuses the
// cmac idiom with g := w, f := b. The sign is folded into the twiddle
// vector by an even/sgn lane mask multiply, matching the scalar
// `wi = sgn * tw[...]` exactly.
// ---------------------------------------------------------------------------

template <class P>
void fft_bfly_t(double* u, double* b, const double* tw, double sgn,
                std::size_t half) {
  if constexpr (P::kWidth == 1) {
    for (std::size_t j = 0; j < half; ++j) {
      const double wr = tw[2 * j];
      const double wi = sgn * tw[2 * j + 1];
      const double br = b[2 * j], bi = b[2 * j + 1];
      const double vr = br * wr - bi * wi;
      const double vi = br * wi + bi * wr;
      const double ur = u[2 * j], ui = u[2 * j + 1];
      u[2 * j] = ur + vr;
      u[2 * j + 1] = ui + vi;
      b[2 * j] = ur - vr;
      b[2 * j + 1] = ui - vi;
    }
  } else {
    constexpr std::size_t W = P::kWidth;
    double sbuf[W];
    for (std::size_t l = 0; l < W; ++l) sbuf[l] = (l & 1) ? sgn : 1.0;
    const typename P::V vsgn = P::loadu(sbuf);
    const std::size_t nd = 2 * half;
    std::size_t i = 0;
    for (; i + W <= nd; i += W) {
      const typename P::V w = P::mul(P::loadu(tw + i), vsgn);
      const typename P::V vb = P::loadu(b + i);
      const typename P::V t = P::mul(P::dup_odd(w), P::swap_pairs(vb));
      const typename P::V v = P::fmaddsub(P::dup_even(w), vb, t);
      const typename P::V vu = P::loadu(u + i);
      P::storeu(u + i, P::add(vu, v));
      P::storeu(b + i, P::sub(vu, v));
    }
    if (i < nd) {
      // nd is even, so the in-pair shuffles never cross the mask edge.
      const typename P::M m = P::tail_mask(nd - i);
      const typename P::V w = P::mul(P::maskz_loadu(m, tw + i), vsgn);
      const typename P::V vb = P::maskz_loadu(m, b + i);
      const typename P::V t = P::mul(P::dup_odd(w), P::swap_pairs(vb));
      const typename P::V v = P::fmaddsub(P::dup_even(w), vb, t);
      const typename P::V vu = P::maskz_loadu(m, u + i);
      P::mask_storeu(u + i, m, P::add(vu, v));
      P::mask_storeu(b + i, m, P::sub(vu, v));
    }
  }
}

// ---------------------------------------------------------------------------
// Direct kernels. Shared staging: W targets -> SoA lanes (tail lanes
// replicate target 0 and are dropped at writeback).
// ---------------------------------------------------------------------------

template <class P>
struct TargetGroup {
  typename P::V x, y, z;
  std::size_t lanes;  ///< valid lane count (tail groups < kWidth)
};

template <class P>
TargetGroup<P> load_targets(const double* trg, std::size_t t0,
                            std::size_t nt) {
  constexpr std::size_t W = P::kWidth;
  const std::size_t lanes = nt - t0 < W ? nt - t0 : W;
  double bx[W], by[W], bz[W];
  for (std::size_t l = 0; l < lanes; ++l) {
    bx[l] = trg[3 * (t0 + l) + 0];
    by[l] = trg[3 * (t0 + l) + 1];
    bz[l] = trg[3 * (t0 + l) + 2];
  }
  for (std::size_t l = lanes; l < W; ++l) {
    bx[l] = bx[0];
    by[l] = by[0];
    bz[l] = bz[0];
  }
  return {P::loadu(bx), P::loadu(by), P::loadu(bz), lanes};
}

/// f[(t0+l)*stride + comp] += lane l of acc, valid lanes only.
template <class P>
void store_lanes_acc(double* f, std::size_t t0, int stride, int comp,
                     typename P::V acc, std::size_t lanes) {
  double out[P::kWidth];
  P::storeu(out, acc);
  for (std::size_t l = 0; l < lanes; ++l)
    f[(t0 + l) * static_cast<std::size_t>(stride) + comp] += out[l];
}

/// Laplace single layer: f[t] += q_s / (4 pi |x_t - y_s|).
template <class P>
void direct_laplace_t(const double* trg, std::size_t nt, const double* src,
                      std::size_t ns, const double* q, double* f) {
  const typename P::V one = P::set1(1.0);
  for (std::size_t t0 = 0; t0 < nt; t0 += P::kWidth) {
    const TargetGroup<P> tg = load_targets<P>(trg, t0, nt);
    typename P::V acc = P::zero();
    for (std::size_t s = 0; s < ns; ++s) {
      const typename P::V dx = P::sub(tg.x, P::set1(src[3 * s + 0]));
      const typename P::V dy = P::sub(tg.y, P::set1(src[3 * s + 1]));
      const typename P::V dz = P::sub(tg.z, P::set1(src[3 * s + 2]));
      typename P::V r2 = P::mul(dx, dx);
      r2 = P::fmadd(dy, dy, r2);
      r2 = P::fmadd(dz, dz, r2);
      const typename P::V inv_r =
          P::zero_where(P::eq(r2, P::zero()), P::div(one, P::sqrt(r2)));
      acc = P::fmadd(P::set1(kOneOver4Pi * q[s]), inv_r, acc);
    }
    store_lanes_acc<P>(f, t0, 1, 0, acc, tg.lanes);
  }
}

/// grad_x Laplace: f[t][i] += -d_i q_s / (4 pi |d|^3).
template <class P>
void direct_laplace_grad_t(const double* trg, std::size_t nt,
                           const double* src, std::size_t ns, const double* q,
                           double* f) {
  const typename P::V one = P::set1(1.0);
  for (std::size_t t0 = 0; t0 < nt; t0 += P::kWidth) {
    const TargetGroup<P> tg = load_targets<P>(trg, t0, nt);
    typename P::V a0 = P::zero(), a1 = P::zero(), a2 = P::zero();
    for (std::size_t s = 0; s < ns; ++s) {
      const typename P::V dx = P::sub(tg.x, P::set1(src[3 * s + 0]));
      const typename P::V dy = P::sub(tg.y, P::set1(src[3 * s + 1]));
      const typename P::V dz = P::sub(tg.z, P::set1(src[3 * s + 2]));
      typename P::V r2 = P::mul(dx, dx);
      r2 = P::fmadd(dy, dy, r2);
      r2 = P::fmadd(dz, dz, r2);
      const typename P::V inv_r =
          P::zero_where(P::eq(r2, P::zero()), P::div(one, P::sqrt(r2)));
      const typename P::V inv_r3 =
          P::mul(P::mul(inv_r, inv_r), inv_r);
      const typename P::V c =
          P::mul(P::set1(-kOneOver4Pi * q[s]), inv_r3);
      a0 = P::fmadd(c, dx, a0);
      a1 = P::fmadd(c, dy, a1);
      a2 = P::fmadd(c, dz, a2);
    }
    store_lanes_acc<P>(f, t0, 3, 0, a0, tg.lanes);
    store_lanes_acc<P>(f, t0, 3, 1, a1, tg.lanes);
    store_lanes_acc<P>(f, t0, 3, 2, a2, tg.lanes);
  }
}

/// Stokes single layer (Oseen): using K q = 1/(8 pi) [q / r + d (d.q)/r^3],
/// f[t][i] += k8 (q_i / r + d_i (d.q) / r^3).
template <class P>
void direct_stokes_t(const double* trg, std::size_t nt, const double* src,
                     std::size_t ns, const double* q, double* f) {
  const typename P::V one = P::set1(1.0);
  for (std::size_t t0 = 0; t0 < nt; t0 += P::kWidth) {
    const TargetGroup<P> tg = load_targets<P>(trg, t0, nt);
    typename P::V a0 = P::zero(), a1 = P::zero(), a2 = P::zero();
    for (std::size_t s = 0; s < ns; ++s) {
      const double q0 = q[3 * s + 0], q1 = q[3 * s + 1], q2 = q[3 * s + 2];
      const typename P::V dx = P::sub(tg.x, P::set1(src[3 * s + 0]));
      const typename P::V dy = P::sub(tg.y, P::set1(src[3 * s + 1]));
      const typename P::V dz = P::sub(tg.z, P::set1(src[3 * s + 2]));
      typename P::V r2 = P::mul(dx, dx);
      r2 = P::fmadd(dy, dy, r2);
      r2 = P::fmadd(dz, dz, r2);
      const typename P::V inv_r =
          P::zero_where(P::eq(r2, P::zero()), P::div(one, P::sqrt(r2)));
      const typename P::V inv_r3 =
          P::mul(P::mul(inv_r, inv_r), inv_r);
      typename P::V dq = P::mul(dx, P::set1(q0));
      dq = P::fmadd(dy, P::set1(q1), dq);
      dq = P::fmadd(dz, P::set1(q2), dq);
      const typename P::V s1 = P::mul(P::set1(kOneOver8Pi), inv_r);
      const typename P::V s3 =
          P::mul(P::set1(kOneOver8Pi), P::mul(dq, inv_r3));
      a0 = P::fmadd(s1, P::set1(q0), a0);
      a1 = P::fmadd(s1, P::set1(q1), a1);
      a2 = P::fmadd(s1, P::set1(q2), a2);
      a0 = P::fmadd(s3, dx, a0);
      a1 = P::fmadd(s3, dy, a1);
      a2 = P::fmadd(s3, dz, a2);
    }
    store_lanes_acc<P>(f, t0, 3, 0, a0, tg.lanes);
    store_lanes_acc<P>(f, t0, 3, 1, a1, tg.lanes);
    store_lanes_acc<P>(f, t0, 3, 2, a2, tg.lanes);
  }
}

/// Regularized Stokeslet (Cortez): smooth at r = 0, no lane mask —
/// self-interaction is finite and KEPT, exactly as in the scalar block.
template <class P>
void direct_stokes_reg_t(const double* trg, std::size_t nt, const double* src,
                         std::size_t ns, const double* q, double* f,
                         double eps2) {
  const typename P::V one = P::set1(1.0);
  const typename P::V veps2 = P::set1(eps2);
  for (std::size_t t0 = 0; t0 < nt; t0 += P::kWidth) {
    const TargetGroup<P> tg = load_targets<P>(trg, t0, nt);
    typename P::V a0 = P::zero(), a1 = P::zero(), a2 = P::zero();
    for (std::size_t s = 0; s < ns; ++s) {
      const double q0 = q[3 * s + 0], q1 = q[3 * s + 1], q2 = q[3 * s + 2];
      const typename P::V dx = P::sub(tg.x, P::set1(src[3 * s + 0]));
      const typename P::V dy = P::sub(tg.y, P::set1(src[3 * s + 1]));
      const typename P::V dz = P::sub(tg.z, P::set1(src[3 * s + 2]));
      typename P::V r2 = P::mul(dx, dx);
      r2 = P::fmadd(dy, dy, r2);
      r2 = P::fmadd(dz, dz, r2);
      const typename P::V re2 = P::add(r2, veps2);
      const typename P::V inv_s = P::div(one, P::sqrt(re2));
      // 1 / (re2 * sqrt(re2)) = inv_s^3
      const typename P::V inv =
          P::mul(P::mul(inv_s, inv_s), inv_s);
      const typename P::V diag = P::mul(
          P::set1(kOneOver8Pi),
          P::mul(P::add(r2, P::set1(2.0 * eps2)), inv));
      const typename P::V offd = P::mul(P::set1(kOneOver8Pi), inv);
      typename P::V dq = P::mul(dx, P::set1(q0));
      dq = P::fmadd(dy, P::set1(q1), dq);
      dq = P::fmadd(dz, P::set1(q2), dq);
      const typename P::V s3 = P::mul(offd, dq);
      a0 = P::fmadd(diag, P::set1(q0), a0);
      a1 = P::fmadd(diag, P::set1(q1), a1);
      a2 = P::fmadd(diag, P::set1(q2), a2);
      a0 = P::fmadd(s3, dx, a0);
      a1 = P::fmadd(s3, dy, a1);
      a2 = P::fmadd(s3, dz, a2);
    }
    store_lanes_acc<P>(f, t0, 3, 0, a0, tg.lanes);
    store_lanes_acc<P>(f, t0, 3, 1, a1, tg.lanes);
    store_lanes_acc<P>(f, t0, 3, 2, a2, tg.lanes);
  }
}

template <class P>
Ops make_ops(Tier tier, const char* name) {
  Ops t;
  t.tier = tier;
  t.name = name;
  t.width = P::kWidth;
  t.axpyn = &axpyn_t<P>;
  t.cmac = &cmac_t<P>;
  t.fft_bfly = &fft_bfly_t<P>;
  t.laplace = &direct_laplace_t<P>;
  t.laplace_grad = &direct_laplace_grad_t<P>;
  t.stokes = &direct_stokes_t<P>;
  t.stokes_reg = &direct_stokes_reg_t<P>;
  return t;
}

}  // namespace pkifmm::simd::impl
