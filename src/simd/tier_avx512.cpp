/// \file tier_avx512.cpp
/// \brief AVX-512 (W = 8) tier. Compiled with -mavx512f -mavx512dq
/// (see simd/CMakeLists.txt); the ONLY place Avx512Pack is
/// instantiated, and only reachable through the CPUID dispatcher.

#include "simd/ops_impl.hpp"

#if !defined(__AVX512F__) || !defined(__AVX512DQ__)
#error "tier_avx512.cpp must be compiled with -mavx512f -mavx512dq"
#endif

namespace pkifmm::simd::detail {

const Ops& avx512_ops() {
  static const Ops table = impl::make_ops<Avx512Pack>(Tier::kAvx512, "avx512");
  return table;
}

}  // namespace pkifmm::simd::detail
