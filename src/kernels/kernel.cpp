#include "kernels/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "simd/simd.hpp"
#include "util/check.hpp"

namespace pkifmm::kernels {

namespace {
constexpr double kOneOver4Pi = 1.0 / (4.0 * std::numbers::pi);
constexpr double kOneOver8Pi = 1.0 / (8.0 * std::numbers::pi);

/// Targets are tiled (kDirectTile at a time) with the source loop
/// outside the tile, so the per-source setup (position + density loads)
/// amortizes over the tile and the inner target loop vectorizes. For a
/// fixed target the sources are still visited in order 0..ns-1, so the
/// accumulation into f[t] is bitwise identical to the naive loop.
/// Used by the generic Kernel::direct and the Yukawa kernels (whose
/// exp() has no vector implementation); the rsqrt-based kernels route
/// through the runtime-dispatched simd::ops() tiers instead.
constexpr std::size_t kDirectTile = 32;

template <int TD, int SD, class K>
std::uint64_t direct_impl(const K& kern, std::span<const double> targets,
                          std::span<const double> sources,
                          std::span<const double> density,
                          std::span<double> potential) {
  PKIFMM_CHECK(targets.size() % 3 == 0 && sources.size() % 3 == 0);
  const std::size_t nt = targets.size() / 3;
  const std::size_t ns = sources.size() / 3;
  PKIFMM_CHECK(density.size() == ns * static_cast<std::size_t>(SD));
  PKIFMM_CHECK(potential.size() == nt * static_cast<std::size_t>(TD));

  double blk[TD * SD];
  for (std::size_t t0 = 0; t0 < nt; t0 += kDirectTile) {
    const std::size_t t1 = std::min(nt, t0 + kDirectTile);
    for (std::size_t s = 0; s < ns; ++s) {
      const double* ys = &sources[3 * s];
      const double* q = &density[s * SD];
      for (std::size_t t = t0; t < t1; ++t) {
        const double* xt = &targets[3 * t];
        const double d[3] = {xt[0] - ys[0], xt[1] - ys[1], xt[2] - ys[2]};
        kern.block(d, blk);
        double* f = &potential[t * TD];
        for (int i = 0; i < TD; ++i)
          for (int j = 0; j < SD; ++j) f[i] += blk[i * SD + j] * q[j];
      }
    }
  }
  return nt * ns * kern.flops_per_interaction();
}

}  // namespace

std::uint64_t Kernel::direct(std::span<const double> targets,
                             std::span<const double> sources,
                             std::span<const double> density,
                             std::span<double> potential) const {
  PKIFMM_CHECK(targets.size() % 3 == 0 && sources.size() % 3 == 0);
  const std::size_t nt = targets.size() / 3;
  const std::size_t ns = sources.size() / 3;
  const int sd = source_dim();
  const int td = target_dim();
  PKIFMM_CHECK(density.size() == ns * static_cast<std::size_t>(sd));
  PKIFMM_CHECK(potential.size() == nt * static_cast<std::size_t>(td));

  double blk[9];
  for (std::size_t t0 = 0; t0 < nt; t0 += kDirectTile) {
    const std::size_t t1 = std::min(nt, t0 + kDirectTile);
    for (std::size_t s = 0; s < ns; ++s) {
      const double* ys = &sources[3 * s];
      const double* q = &density[s * sd];
      for (std::size_t t = t0; t < t1; ++t) {
        const double* xt = &targets[3 * t];
        const double d[3] = {xt[0] - ys[0], xt[1] - ys[1], xt[2] - ys[2]};
        block(d, blk);
        double* f = &potential[t * td];
        for (int i = 0; i < td; ++i)
          for (int j = 0; j < sd; ++j) f[i] += blk[i * sd + j] * q[j];
      }
    }
  }
  return nt * ns * flops_per_interaction();
}

std::uint64_t Kernel::direct_sample(std::span<const double> targets,
                                    std::span<const double> sources,
                                    std::span<const double> density,
                                    std::span<double> potential) const {
  return direct(targets, sources, density, potential);
}

la::Matrix Kernel::assemble(std::span<const double> targets,
                            std::span<const double> sources) const {
  PKIFMM_CHECK(targets.size() % 3 == 0 && sources.size() % 3 == 0);
  const std::size_t nt = targets.size() / 3;
  const std::size_t ns = sources.size() / 3;
  const int sd = source_dim();
  const int td = target_dim();

  la::Matrix m(nt * td, ns * sd);
  double blk[9];
  for (std::size_t t = 0; t < nt; ++t) {
    for (std::size_t s = 0; s < ns; ++s) {
      const double d[3] = {targets[3 * t] - sources[3 * s],
                           targets[3 * t + 1] - sources[3 * s + 1],
                           targets[3 * t + 2] - sources[3 * s + 2]};
      block(d, blk);
      for (int i = 0; i < td; ++i)
        for (int j = 0; j < sd; ++j)
          m(t * td + i, s * sd + j) = blk[i * sd + j];
    }
  }
  return m;
}

void LaplaceKernel::block(const double d[3], double* out) const {
  const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
  // Coincident-point guard: every singular kernel in this file tests
  // r2 == 0.0, so a NaN coordinate propagates (r2 = NaN fails both
  // `== 0.0` and the old `> 0.0` ordering, but `> 0.0` silently mapped
  // NaN to 0 while the others let it through). -0.0 components still
  // hit the guard since (-0.0)^2 == +0.0. The SIMD tiers reproduce
  // this exact predicate with a lane mask.
  if (r2 == 0.0) {
    out[0] = 0.0;
    return;
  }
  out[0] = kOneOver4Pi / std::sqrt(r2);
}

std::unique_ptr<Kernel> LaplaceKernel::gradient() const {
  return std::make_unique<LaplaceGradKernel>();
}

void LaplaceGradKernel::block(const double d[3], double* out) const {
  const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
  if (r2 == 0.0) {
    out[0] = out[1] = out[2] = 0.0;
    return;
  }
  const double inv_r = 1.0 / std::sqrt(r2);
  const double c = -kOneOver4Pi * inv_r * inv_r * inv_r;
  out[0] = c * d[0];
  out[1] = c * d[1];
  out[2] = c * d[2];
}

std::unique_ptr<Kernel> YukawaKernel::gradient() const {
  return std::make_unique<YukawaGradKernel>(lambda_);
}

void YukawaGradKernel::block(const double d[3], double* out) const {
  const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
  if (r2 == 0.0) {
    out[0] = out[1] = out[2] = 0.0;
    return;
  }
  const double r = std::sqrt(r2);
  const double c = -kOneOver4Pi * (1.0 + lambda_ * r) *
                   std::exp(-lambda_ * r) / (r2 * r);
  out[0] = c * d[0];
  out[1] = c * d[1];
  out[2] = c * d[2];
}

void StokesKernel::block(const double d[3], double* out) const {
  const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
  if (r2 == 0.0) {
    for (int i = 0; i < 9; ++i) out[i] = 0.0;
    return;
  }
  const double inv_r = 1.0 / std::sqrt(r2);
  const double inv_r3 = inv_r * inv_r * inv_r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      out[i * 3 + j] =
          kOneOver8Pi * ((i == j ? inv_r : 0.0) + d[i] * d[j] * inv_r3);
}

void YukawaKernel::block(const double d[3], double* out) const {
  const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
  if (r2 == 0.0) {
    out[0] = 0.0;
    return;
  }
  const double r = std::sqrt(r2);
  out[0] = kOneOver4Pi * std::exp(-lambda_ * r) / r;
}

void RegularizedStokesKernel::block(const double d[3], double* out) const {
  const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
  const double re2 = r2 + eps2_;
  const double inv = 1.0 / (re2 * std::sqrt(re2));
  const double diag = kOneOver8Pi * (r2 + 2.0 * eps2_) * inv;
  const double offd = kOneOver8Pi * inv;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      out[i * 3 + j] = (i == j ? diag : 0.0) + offd * d[i] * d[j];
}

namespace {

/// Span-shape checks shared by the simd::ops()-routed direct() paths.
std::pair<std::size_t, std::size_t> check_direct_spans(
    std::span<const double> targets, std::span<const double> sources,
    std::span<const double> density, std::span<double> potential, int td,
    int sd) {
  PKIFMM_CHECK(targets.size() % 3 == 0 && sources.size() % 3 == 0);
  const std::size_t nt = targets.size() / 3;
  const std::size_t ns = sources.size() / 3;
  PKIFMM_CHECK(density.size() == ns * static_cast<std::size_t>(sd));
  PKIFMM_CHECK(potential.size() == nt * static_cast<std::size_t>(td));
  return {nt, ns};
}

}  // namespace

// The rsqrt-based kernels route through the runtime-dispatched SIMD
// tiers (src/simd/): source-tiled loops over target vector lanes, with
// the r2 == 0 guard as a lane mask. The Yukawa kernels keep the scalar
// direct_impl tile at every tier — their exp() has no vector
// implementation, and a libm call per lane would erase the win.
std::uint64_t LaplaceKernel::direct(std::span<const double> targets,
                                    std::span<const double> sources,
                                    std::span<const double> density,
                                    std::span<double> potential) const {
  const auto [nt, ns] =
      check_direct_spans(targets, sources, density, potential, 1, 1);
  simd::ops().laplace(targets.data(), nt, sources.data(), ns, density.data(),
                      potential.data());
  return nt * ns * flops_per_interaction();
}

std::uint64_t LaplaceGradKernel::direct(std::span<const double> targets,
                                        std::span<const double> sources,
                                        std::span<const double> density,
                                        std::span<double> potential) const {
  const auto [nt, ns] =
      check_direct_spans(targets, sources, density, potential, 3, 1);
  simd::ops().laplace_grad(targets.data(), nt, sources.data(), ns,
                           density.data(), potential.data());
  return nt * ns * flops_per_interaction();
}

std::uint64_t YukawaGradKernel::direct(std::span<const double> targets,
                                       std::span<const double> sources,
                                       std::span<const double> density,
                                       std::span<double> potential) const {
  return direct_impl<3, 1>(*this, targets, sources, density, potential);
}

std::uint64_t StokesKernel::direct(std::span<const double> targets,
                                   std::span<const double> sources,
                                   std::span<const double> density,
                                   std::span<double> potential) const {
  const auto [nt, ns] =
      check_direct_spans(targets, sources, density, potential, 3, 3);
  simd::ops().stokes(targets.data(), nt, sources.data(), ns, density.data(),
                     potential.data());
  return nt * ns * flops_per_interaction();
}

std::uint64_t RegularizedStokesKernel::direct(
    std::span<const double> targets, std::span<const double> sources,
    std::span<const double> density, std::span<double> potential) const {
  const auto [nt, ns] =
      check_direct_spans(targets, sources, density, potential, 3, 3);
  simd::ops().stokes_reg(targets.data(), nt, sources.data(), ns,
                         density.data(), potential.data(), eps2_);
  return nt * ns * flops_per_interaction();
}

std::uint64_t YukawaKernel::direct(std::span<const double> targets,
                                   std::span<const double> sources,
                                   std::span<const double> density,
                                   std::span<double> potential) const {
  return direct_impl<1, 1>(*this, targets, sources, density, potential);
}

std::unique_ptr<Kernel> make_kernel(const std::string& name) {
  if (name == "laplace") return std::make_unique<LaplaceKernel>();
  if (name == "stokes") return std::make_unique<StokesKernel>();
  if (name == "yukawa") return std::make_unique<YukawaKernel>();
  if (name == "stokes-reg") return std::make_unique<RegularizedStokesKernel>();
  PKIFMM_CHECK_MSG(false, "unknown kernel '" << name << "'");
  return nullptr;
}

}  // namespace pkifmm::kernels
