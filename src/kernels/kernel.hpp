#pragma once
/// \file kernel.hpp
/// \brief Interaction kernels K(x, y) for the N-body sums of Eq. (1).
///
/// The paper evaluates the Stokes single-layer kernel (3 unknowns per
/// point, used for the Kraken runs) and the Laplace single-layer kernel
/// (scalar, used for the GPU runs). pkifmm additionally ships the
/// modified-Laplace (Yukawa) kernel as a non-homogeneous test case,
/// which exercises the per-level translation-table path.
///
/// A kernel exposes:
///  - the tensor block K(x, y) (target_dim x source_dim),
///  - a tuned direct-summation loop (the ULI inner kernel on the CPU),
///  - dense matrix assembly for the KIFMM translation-operator setup,
///  - homogeneity metadata, which lets the FMM reuse one set of
///    translation tables across levels (degree -1 for Laplace/Stokes),
///  - an analytic flop cost per interaction, feeding the paper-style
///    flop accounting (Table II, Fig. 5).

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "la/matrix.hpp"

namespace pkifmm::kernels {

/// Interface for translation-invariant interaction kernels K(x - y).
///
/// Thread-safety contract: kernel instances are stateless after
/// construction, so every const method — direct() in particular — may
/// run concurrently from util::TaskPool lanes against one shared
/// instance, provided the callers' potential spans are disjoint. The
/// evaluator's parallel ULI/WLI/XLI/D2T tiles depend on this.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Density components per source point (e.g. 3 for Stokes).
  virtual int source_dim() const = 0;
  /// Potential components per target point.
  virtual int target_dim() const = 0;

  /// True if K(lambda d) = lambda^degree K(d); enables sharing
  /// translation tables across octree levels.
  virtual bool homogeneous() const = 0;
  virtual double homogeneity_degree() const = 0;

  /// Writes the target_dim x source_dim interaction block for
  /// displacement d = x - y (row-major). A zero displacement must yield
  /// a zero block (self-interactions do not contribute).
  virtual void block(const double d[3], double* out) const = 0;

  /// Model flop cost of one target/source interaction (all components).
  virtual std::uint64_t flops_per_interaction() const = 0;

  virtual std::string name() const = 0;

  /// The target-gradient companion kernel grad_x K(x - y), or nullptr
  /// if not available. Used for force evaluation: the FMM's equivalent
  /// densities are computed with K, then outputs are evaluated with
  /// grad K (same densities, differentiated evaluation operator).
  virtual std::unique_ptr<Kernel> gradient() const { return nullptr; }

  /// Direct summation: for every target t and source s,
  /// f[t] += K(x_t, y_s) q_s. Points are xyz-interleaved. The potential
  /// span must be pre-sized to targets.size()/3*target_dim and is
  /// accumulated into. Returns the flop count of the evaluation.
  ///
  /// Target-tiled (tile of ~32 targets, source loop outside the tile) so
  /// the inner loop vectorizes. The rsqrt-based kernels (Laplace,
  /// Laplace-grad, Stokes, regularized Stokes) override this to route
  /// through the runtime-dispatched SIMD tiers (simd::ops()); the Yukawa
  /// kernels override with the same tiling but a statically inlined
  /// block(). In every case sources are visited in order 0..ns-1 per
  /// target and the potential accumulates in that order, so within one
  /// SIMD tier results are bitwise deterministic regardless of how
  /// callers split the target range; across tiers results agree to
  /// 1e-12 relative (see DESIGN.md, SIMD section).
  virtual std::uint64_t direct(std::span<const double> targets,
                               std::span<const double> sources,
                               std::span<const double> density,
                               std::span<double> potential) const;

  /// Assembles the dense interaction matrix K(X, Y) with shape
  /// (ntargets*target_dim) x (nsources*source_dim). Used by the KIFMM
  /// precomputation (S, U, D, E, Q, R, T operators of paper Table I).
  la::Matrix assemble(std::span<const double> targets,
                      std::span<const double> sources) const;

  /// Reference summation for the online health sampler
  /// (obs/health.hpp): identical contract to direct(), but a stable,
  /// non-virtual entry point so the health layer's accuracy estimate is
  /// pinned to the kernel's canonical summation semantics (coincident
  /// target/source pairs contribute the kernel's own zero-displacement
  /// block — exactly what the FMM's U-list computes) even if direct()
  /// later grows fast-math variants. Forwards to direct().
  std::uint64_t direct_sample(std::span<const double> targets,
                              std::span<const double> sources,
                              std::span<const double> density,
                              std::span<double> potential) const;
};

/// Laplace single layer: K = 1 / (4 pi |d|). Scalar, homogeneous of
/// degree -1. Used for the GPU experiments in the paper.
class LaplaceKernel final : public Kernel {
 public:
  int source_dim() const override { return 1; }
  int target_dim() const override { return 1; }
  bool homogeneous() const override { return true; }
  double homogeneity_degree() const override { return -1.0; }
  void block(const double d[3], double* out) const override;
  std::uint64_t flops_per_interaction() const override { return 10; }
  std::string name() const override { return "laplace"; }
  std::uint64_t direct(std::span<const double> targets,
                       std::span<const double> sources,
                       std::span<const double> density,
                       std::span<double> potential) const override;
  std::unique_ptr<Kernel> gradient() const override;
};

/// grad_x of the Laplace single layer: G_i = -d_i / (4 pi |d|^3).
/// 3 components per target, 1 density per source; homogeneous of
/// degree -2. Gives forces/accelerations in gravity/electrostatics.
class LaplaceGradKernel final : public Kernel {
 public:
  int source_dim() const override { return 1; }
  int target_dim() const override { return 3; }
  bool homogeneous() const override { return true; }
  double homogeneity_degree() const override { return -2.0; }
  void block(const double d[3], double* out) const override;
  std::uint64_t flops_per_interaction() const override { return 16; }
  std::string name() const override { return "laplace-grad"; }
  std::uint64_t direct(std::span<const double> targets,
                       std::span<const double> sources,
                       std::span<const double> density,
                       std::span<double> potential) const override;
};

/// grad_x of the Yukawa kernel:
/// G_i = -d_i (1 + lambda |d|) exp(-lambda |d|) / (4 pi |d|^3).
class YukawaGradKernel final : public Kernel {
 public:
  explicit YukawaGradKernel(double lambda) : lambda_(lambda) {}
  int source_dim() const override { return 1; }
  int target_dim() const override { return 3; }
  bool homogeneous() const override { return false; }
  double homogeneity_degree() const override { return 0.0; }
  void block(const double d[3], double* out) const override;
  std::uint64_t flops_per_interaction() const override { return 22; }
  std::string name() const override { return "yukawa-grad"; }
  std::uint64_t direct(std::span<const double> targets,
                       std::span<const double> sources,
                       std::span<const double> density,
                       std::span<double> potential) const override;

 private:
  double lambda_;
};

/// Stokes single layer (Oseen tensor, unit viscosity):
/// K_ij = 1/(8 pi) (delta_ij / |d| + d_i d_j / |d|^3).
/// 3x3 block, homogeneous of degree -1. Used for the Kraken runs.
class StokesKernel final : public Kernel {
 public:
  int source_dim() const override { return 3; }
  int target_dim() const override { return 3; }
  bool homogeneous() const override { return true; }
  double homogeneity_degree() const override { return -1.0; }
  void block(const double d[3], double* out) const override;
  std::uint64_t flops_per_interaction() const override { return 40; }
  std::string name() const override { return "stokes"; }
  std::uint64_t direct(std::span<const double> targets,
                       std::span<const double> sources,
                       std::span<const double> density,
                       std::span<double> potential) const override;
};

/// Regularized Stokeslet (Cortez 2001): the mollified Stokes single
/// layer used for suspension/swimmer simulations,
///   K_ij = [delta_ij (r^2 + 2 eps^2) + d_i d_j] / (8 pi (r^2+eps^2)^{3/2}).
/// Smooth at r = 0 (self-interaction is finite and kept) and
/// non-homogeneous because of the regularization length eps — so it
/// exercises the per-level translation tables with a vector kernel.
class RegularizedStokesKernel final : public Kernel {
 public:
  explicit RegularizedStokesKernel(double epsilon = 0.01)
      : eps2_(epsilon * epsilon) {}
  int source_dim() const override { return 3; }
  int target_dim() const override { return 3; }
  bool homogeneous() const override { return false; }
  double homogeneity_degree() const override { return 0.0; }
  void block(const double d[3], double* out) const override;
  std::uint64_t flops_per_interaction() const override { return 44; }
  std::string name() const override { return "stokes-reg"; }
  std::uint64_t direct(std::span<const double> targets,
                       std::span<const double> sources,
                       std::span<const double> density,
                       std::span<double> potential) const override;
  double epsilon() const { return std::sqrt(eps2_); }

 private:
  double eps2_;
};

/// Modified Laplace (Yukawa): K = exp(-lambda |d|) / (4 pi |d|).
/// Non-homogeneous; exercises the per-level translation-table path.
class YukawaKernel final : public Kernel {
 public:
  explicit YukawaKernel(double lambda = 5.0) : lambda_(lambda) {}
  int source_dim() const override { return 1; }
  int target_dim() const override { return 1; }
  bool homogeneous() const override { return false; }
  double homogeneity_degree() const override { return 0.0; }
  void block(const double d[3], double* out) const override;
  std::uint64_t flops_per_interaction() const override { return 14; }
  std::string name() const override { return "yukawa"; }
  std::uint64_t direct(std::span<const double> targets,
                       std::span<const double> sources,
                       std::span<const double> density,
                       std::span<double> potential) const override;
  std::unique_ptr<Kernel> gradient() const override;
  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// Factory by name ("laplace" | "stokes" | "yukawa").
std::unique_ptr<Kernel> make_kernel(const std::string& name);

}  // namespace pkifmm::kernels
