/// \file pkifmm_cli.cpp
/// \brief Command-line driver exposing the full pkifmm configuration
/// surface — the entry point a downstream user scripts against.
///
///   ./pkifmm_cli --n=50000 --kernel=stokes --dist=nonuniform \
///                --ranks=8 --q=60 --accuracy=4 --reduce=hypercube \
///                --m2l=fft --balance21 --gradient --check=100
///
/// Prints tree statistics, the per-phase Max/Avg breakdown (Table II
/// layout), and an optional accuracy check against direct summation on
/// a sample of points.

#include <cstdio>
#include <unordered_map>

#include "comm/comm.hpp"
#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pkifmm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "pkifmm_cli options:\n"
        "  --n=N            global point count (default 20000)\n"
        "  --ranks=P        simulated ranks (default 4)\n"
        "  --kernel=K       laplace | stokes | yukawa (default laplace)\n"
        "  --dist=D         uniform | nonuniform | cluster (default uniform)\n"
        "  --q=Q            max points per leaf (default 100)\n"
        "  --accuracy=N     surface order 4|6|8 (default 6)\n"
        "  --m2l=M          fft | dense (default fft)\n"
        "  --reduce=R       hypercube | owner (default hypercube)\n"
        "  --no-load-balance  disable work-weighted repartitioning\n"
        "  --balance21      2:1 balance the octree\n"
        "  --gradient       also evaluate grad(potential)\n"
        "  --check=S        verify S sample points against direct sum\n"
        "  --seed=X         point-generation seed (default 42)\n");
    return 0;
  }

  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int p = static_cast<int>(cli.get_int("ranks", 4));
  const std::string kernel_name = cli.get("kernel", "laplace");
  const auto dist = octree::distribution_from_name(cli.get("dist", "uniform"));
  const bool gradient = cli.get_bool("gradient", false);
  const auto check = static_cast<std::size_t>(cli.get_int("check", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  auto kernel = kernels::make_kernel(kernel_name);
  core::FmmOptions opts;
  opts.surface_n = static_cast<int>(cli.get_int("accuracy", 6));
  opts.max_points_per_leaf = static_cast<int>(cli.get_int("q", 100));
  opts.m2l = cli.get("m2l", "fft") == "dense" ? core::M2lMode::kDense
                                              : core::M2lMode::kFft;
  opts.reduce = cli.get("reduce", "hypercube") == "owner"
                    ? core::ReduceMode::kOwner
                    : core::ReduceMode::kHypercube;
  opts.load_balance = !cli.get_bool("no-load-balance", false);
  opts.balance_2to1 = cli.get_bool("balance21", false);
  PKIFMM_CHECK_MSG(!gradient || kernel->gradient() != nullptr,
                   "kernel '" << kernel_name << "' has no gradient");

  std::printf("pkifmm: N=%llu kernel=%s ranks=%d q=%d accuracy=%d\n",
              static_cast<unsigned long long>(n), kernel_name.c_str(), p,
              opts.max_points_per_leaf, opts.surface_n);

  Timer build_timer;
  const core::Tables tables(*kernel, opts);
  std::printf("translation tables built in %.2f s\n", build_timer.seconds());

  auto reports = comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(dist, n, ctx.rank(), ctx.size(),
                                       kernel->source_dim(), seed);
    const auto mine = pts;
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    if (ctx.rank() == 0) {
      const auto& let = fmm.let();
      std::printf("rank 0: LET %zu octants, leaf levels %d..%d\n",
                  let.nodes.size(), let.min_leaf_level(),
                  let.max_leaf_level());
    }
    auto result = fmm.evaluate(gradient);

    if (check > 0) {
      const std::size_t s = std::min(check, mine.size());
      std::vector<octree::PointRec> sample;
      for (const auto& pt : mine) {
        if (!pt.is_target()) continue;
        sample.push_back(pt);
        if (sample.size() == s) break;
      }
      auto all = ctx.comm.allgatherv_concat(
          std::span<const octree::PointRec>(mine));
      const auto exact = core::direct_local(*kernel, sample, all);

      struct GP {
        std::uint64_t gid;
        double v[3];
      };
      const int td = kernel->target_dim();
      std::vector<GP> out(result.gids.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i].gid = result.gids[i];
        for (int c = 0; c < td; ++c)
          out[i].v[c] = result.potentials[i * td + c];
      }
      auto gathered = ctx.comm.allgatherv_concat(std::span<const GP>(out));
      std::unordered_map<std::uint64_t, const GP*> by_gid;
      for (const auto& g : gathered) by_gid.emplace(g.gid, &g);
      std::vector<double> approx(exact.size());
      for (std::size_t i = 0; i < sample.size(); ++i)
        for (int c = 0; c < td; ++c)
          approx[i * td + c] = by_gid.at(sample[i].gid)->v[c];
      if (ctx.rank() == 0)
        std::printf("accuracy vs direct sum (%zu samples): rel L2 = %s\n", s,
                    sci(rel_l2_error(approx, exact)).c_str());
    }
  });

  // Table II-style breakdown (thread-CPU work; see DESIGN.md).
  Table table({"Event", "Max. CPU", "Avg. CPU", "Max. Flops", "Avg. Flops"});
  auto row = [&](const char* name, const char* prefix) {
    std::vector<double> t, f;
    for (const auto& rep : reports) {
      double ct = 0, cf = 0;
      for (const auto& [ph, v] : rep.cpu_phases)
        if (ph.rfind(prefix, 0) == 0) ct += v;
      for (const auto& [ph, v] : rep.flop_phases)
        if (ph.rfind(prefix, 0) == 0) cf += double(v);
      t.push_back(ct);
      f.push_back(cf);
    }
    const Summary st = Summary::of(t), sf = Summary::of(f);
    table.add_row({name, sci(st.max), sci(st.avg), sci(sf.max), sci(sf.avg)});
  };
  row("Setup", "setup.");
  row("Total eval", "eval.");
  row("Upward", "eval.s2u");
  row("U-list", "eval.uli");
  row("V-list", "eval.vli");
  row("W-list", "eval.wli");
  row("X-list", "eval.xli");
  row("Downward", "eval.down");
  if (gradient) row("Gradient", "grad.");
  std::printf("\n%s", table.str().c_str());
  return 0;
}
