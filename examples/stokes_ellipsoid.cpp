/// \file stokes_ellipsoid.cpp
/// \brief The paper's target application class (fluid mechanics):
/// velocity field induced by Stokeslet forces distributed on the
/// surface of a 1:1:4 ellipsoid — the single-layer potential of a rigid
/// body in Stokes flow.
///
/// This is exactly the nonuniform configuration of the paper's Kraken
/// runs: the uniform-in-angle surface sampling concentrates points at
/// the poles and produces a deeply adaptive octree. The example prints
/// tree statistics (leaf-level spread — the paper's 65K run spanned
/// levels 2..27), evaluates the velocities, and spot-checks accuracy.
///
///   ./stokes_ellipsoid [--n=20000] [--ranks=4]

#include <cstdio>
#include <unordered_map>

#include "comm/comm.hpp"
#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pkifmm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int p = static_cast<int>(cli.get_int("ranks", 4));

  std::printf(
      "Stokes flow: %llu Stokeslets on a 1:1:4 ellipsoid surface, %d ranks\n",
      static_cast<unsigned long long>(n), p);

  kernels::StokesKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 60;
  const core::Tables tables(kernel, opts);

  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    // Unit tangential force density (a rotation-like forcing) on the
    // ellipsoid surface.
    auto points = octree::generate_points(octree::Distribution::kEllipsoid, n,
                                          ctx.rank(), ctx.size(), 3, 7);
    for (auto& pt : points) {
      // Force ~ e_z x (x - center): swirl around the long axis.
      const double rx = pt.pos[0] - 0.5, ry = pt.pos[1] - 0.5;
      pt.den[0] = -ry;
      pt.den[1] = rx;
      pt.den[2] = 0.0;
    }
    const auto sample = points;

    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(points));

    if (ctx.rank() == 0) {
      const auto& let = fmm.let();
      std::printf("adaptive tree: leaf levels %d..%d (%d levels of spread)\n",
                  let.min_leaf_level(), let.max_leaf_level(),
                  let.max_leaf_level() - let.min_leaf_level());
    }

    const auto result = fmm.evaluate();

    // Velocity statistics + accuracy spot check.
    Accumulator speed;
    for (std::size_t i = 0; i < result.gids.size(); ++i) {
      const double* v = &result.potentials[3 * i];
      speed.add(std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]));
    }

    struct GP {
      std::uint64_t gid;
      double v[3];
    };
    std::vector<GP> mine(result.gids.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i].gid = result.gids[i];
      for (int c = 0; c < 3; ++c) mine[i].v[c] = result.potentials[3 * i + c];
    }
    auto all = ctx.comm.allgatherv_concat(std::span<const GP>(mine));
    std::unordered_map<std::uint64_t, const GP*> by_gid;
    for (const auto& g : all) by_gid.emplace(g.gid, &g);

    std::vector<octree::PointRec> check(
        sample.begin(),
        sample.begin() + std::min<std::size_t>(50, sample.size()));
    auto all_pts =
        ctx.comm.allgatherv_concat(std::span<const octree::PointRec>(sample));
    const auto exact = core::direct_local(kernel, check, all_pts);
    std::vector<double> approx(exact.size());
    for (std::size_t i = 0; i < check.size(); ++i)
      for (int c = 0; c < 3; ++c)
        approx[3 * i + c] = by_gid.at(check[i].gid)->v[c];
    const double err = rel_l2_error(approx, exact);

    if (ctx.rank() == 0) {
      std::printf("rank 0 velocities: mean |u| = %s, max |u| = %s\n",
                  sci(speed.mean()).c_str(), sci(speed.max()).c_str());
      std::printf("relative L2 error vs direct sum (50 samples): %s\n",
                  sci(err).c_str());
      PKIFMM_CHECK_MSG(err < 5e-2, "accuracy regression");
    }
  });
  return 0;
}
