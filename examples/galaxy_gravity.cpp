/// \file galaxy_gravity.cpp
/// \brief Gravitational N-body potential of a clustered "galaxy":
/// a dense Gaussian core with a sparse halo (the load-balancing stress
/// distribution), evaluated with the Laplace kernel — the classic FMM
/// application (K = 1/(4 pi r), masses as densities).
///
/// Demonstrates repeated evaluation on the same tree with updated
/// densities (a time-stepper would do this every step) and reports the
/// total potential energy   U = -G/2 sum_i m_i phi_i.
///
///   ./galaxy_gravity [--n=30000] [--ranks=4]

#include <cstdio>

#include "comm/comm.hpp"
#include "core/fmm.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pkifmm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 30000));
  const int p = static_cast<int>(cli.get_int("ranks", 4));

  std::printf("galaxy: %llu bodies (dense core + halo), %d ranks\n",
              static_cast<unsigned long long>(n), p);

  kernels::LaplaceKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 80;
  const core::Tables tables(kernel, opts);

  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto points = octree::generate_points(octree::Distribution::kCluster, n,
                                          ctx.rank(), ctx.size(), 1, 99);
    // Masses: equal bodies, total mass 1.
    const double mass = 1.0 / static_cast<double>(n);
    for (auto& pt : points) pt.den[0] = mass;

    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(points));

    if (ctx.rank() == 0)
      std::printf("tree: %zu octants on rank 0, leaf levels %d..%d\n",
                  fmm.let().nodes.size(), fmm.let().min_leaf_level(),
                  fmm.let().max_leaf_level());

    auto result = fmm.evaluate(/*with_gradient=*/true);

    // Total potential energy: U = -1/2 sum_i m_i phi_i (G = 4 pi here
    // so that phi matches the Laplace single-layer normalization).
    double local_u = 0.0;
    for (double phi : result.potentials) local_u += mass * phi;
    const double total_u = -0.5 * ctx.comm.allreduce_sum(local_u);

    // Accelerations a_i = grad phi (toward the mass in this sign
    // convention) — what a leapfrog integrator would consume.
    Accumulator acc_mag;
    for (std::size_t i = 0; i < result.gids.size(); ++i) {
      const double* a = &result.gradients[3 * i];
      acc_mag.add(std::sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]));
    }
    // Momentum conservation: sum_i m_i a_i ~ 0 (Newton's third law).
    double net[3] = {0, 0, 0};
    for (std::size_t i = 0; i < result.gids.size(); ++i)
      for (int c = 0; c < 3; ++c) net[c] += mass * result.gradients[3 * i + c];
    for (int c = 0; c < 3; ++c) net[c] = ctx.comm.allreduce_sum(net[c]);

    // Second evaluation: double all masses -> energy must quadruple.
    std::vector<std::uint64_t> gids = result.gids;
    std::vector<double> den(gids.size(), 2.0 * mass);
    fmm.set_densities(gids, den);
    auto result2 = fmm.evaluate();
    double local_u2 = 0.0;
    for (double phi : result2.potentials) local_u2 += 2.0 * mass * phi;
    const double total_u2 = -0.5 * ctx.comm.allreduce_sum(local_u2);

    if (ctx.rank() == 0) {
      const double net_mag =
          std::sqrt(net[0] * net[0] + net[1] * net[1] + net[2] * net[2]);
      std::printf("accelerations: mean |a| = %s; |net momentum flux| = %s "
                  "(~0 by Newton's 3rd law)\n",
                  sci(acc_mag.mean()).c_str(), sci(net_mag).c_str());
      PKIFMM_CHECK(net_mag < 1e-3 * acc_mag.mean());
      std::printf("potential energy (unit masses):    U = %s\n",
                  sci(total_u).c_str());
      std::printf("potential energy (doubled masses): U = %s (ratio %.4f, "
                  "expected 4)\n",
                  sci(total_u2).c_str(), total_u2 / total_u);
      PKIFMM_CHECK(std::abs(total_u2 / total_u - 4.0) < 1e-6);
    }
  });
  return 0;
}
