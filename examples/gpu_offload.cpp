/// \file gpu_offload.cpp
/// \brief GPU-accelerated evaluation (paper §IV): offloads S2U, ULI,
/// D2T and the diagonal V-list translation to the streaming device,
/// compares against the CPU evaluator, and prints the device's kernel
/// statistics (flops, memory traffic, arithmetic intensity, modeled
/// time) plus the CPU->GPU data-structure translation cost.
///
///   ./gpu_offload [--n=30000] [--q=200] [--block=64]

#include <cstdio>

#include "comm/comm.hpp"
#include "core/fmm.hpp"
#include "gpu/evaluator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pkifmm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 30000));
  const int q = static_cast<int>(cli.get_int("q", 200));
  const int block = static_cast<int>(cli.get_int("block", 64));

  std::printf("GPU offload: %llu Laplace charges, q = %d, block = %d\n",
              static_cast<unsigned long long>(n), q, block);

  kernels::LaplaceKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = q;
  opts.load_balance = false;
  const core::Tables tables(kernel, opts);

  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto points = octree::generate_points(octree::Distribution::kUniform, n,
                                          0, 1, 1, 3);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(points));

    // CPU reference evaluation.
    core::Evaluator cpu(tables, fmm.let(), ctx);
    cpu.run();

    // Device evaluation (single precision, like the paper's GPUs).
    gpu::StreamDevice dev;
    gpu::GpuEvaluator gpu_eval(tables, fmm.let(), ctx, dev, block);
    gpu_eval.run();

    std::vector<double> pc(cpu.potential().begin(), cpu.potential().end());
    std::vector<double> pg(gpu_eval.potential().begin(),
                           gpu_eval.potential().end());
    std::printf("GPU vs CPU relative L2 difference: %s (single vs double "
                "precision)\n\n",
                sci(rel_l2_error(pg, pc)).c_str());
    PKIFMM_CHECK(rel_l2_error(pg, pc) < 1e-3);

    Table table({"kernel", "flops", "gmem bytes", "flops/byte",
                 "modeled time (s)"});
    for (const auto& [name, ks] : dev.kernels())
      table.add_row({name, sci(double(ks.flops)), sci(double(ks.gmem_bytes)),
                     fixed(double(ks.flops) / double(ks.gmem_bytes), 2),
                     sci(ks.modeled_seconds)});
    std::printf("%s\n", table.str().c_str());
    std::printf("PCIe transfers: %s bytes, %s s modeled\n",
                with_commas(dev.transfer_bytes()).c_str(),
                sci(dev.transfer_seconds()).c_str());
    std::printf("SoA translation footprint: %s bytes; translation time %s s\n",
                with_commas(gpu_eval.gpu_let().footprint_bytes()).c_str(),
                sci(ctx.timer.get_cpu("gpu.translate")).c_str());
    std::printf("total modeled device time: %s s\n",
                sci(dev.modeled_seconds()).c_str());
  });
  return 0;
}
