/// \file quickstart.cpp
/// \brief Minimal end-to-end pkifmm usage: evaluate the Laplace
/// potential of N random charges with the parallel KIFMM and verify a
/// sample against direct summation.
///
///   ./quickstart [--n=20000] [--ranks=4] [--accuracy=6]

#include <cstdio>
#include <unordered_map>

#include "comm/comm.hpp"
#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace pkifmm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int p = static_cast<int>(cli.get_int("ranks", 4));
  const int accuracy = static_cast<int>(cli.get_int("accuracy", 6));

  std::printf("pkifmm quickstart: %llu Laplace charges, %d simulated ranks\n",
              static_cast<unsigned long long>(n), p);

  // 1. Choose a kernel and build the translation tables (once; shared
  //    read-only by every rank).
  kernels::LaplaceKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = accuracy;       // 4 = low, 6 = medium, 8 = high
  opts.max_points_per_leaf = 100;  // q
  const core::Tables tables(kernel, opts);

  // 2. SPMD region: each rank contributes its share of the points.
  Timer wall;
  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto points = octree::generate_points(octree::Distribution::kUniform, n,
                                          ctx.rank(), ctx.size(),
                                          kernel.source_dim(), /*seed=*/1);
    const auto sample = points;  // keep some for verification

    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(points));           // tree + LET + load balance
    const auto result = fmm.evaluate();     // Algorithm 1 + Algorithm 3

    // 3. Verify ~100 of this rank's original points against the exact
    //    O(N^2) sum (gather results by gid first).
    struct GP {
      std::uint64_t gid;
      double v;
    };
    std::vector<GP> mine(result.gids.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = {result.gids[i], result.potentials[i]};
    auto all = ctx.comm.allgatherv_concat(std::span<const GP>(mine));
    std::unordered_map<std::uint64_t, double> by_gid;
    for (const auto& g : all) by_gid.emplace(g.gid, g.v);

    std::vector<octree::PointRec> check(
        sample.begin(), sample.begin() + std::min<std::size_t>(100, sample.size()));
    auto all_pts = ctx.comm.allgatherv_concat(
        std::span<const octree::PointRec>(sample));
    const auto exact = core::direct_local(kernel, check, all_pts);

    std::vector<double> approx(check.size());
    for (std::size_t i = 0; i < check.size(); ++i)
      approx[i] = by_gid.at(check[i].gid);
    const double err = rel_l2_error(approx, exact);

    if (ctx.rank() == 0) {
      std::printf("rank 0: LET has %zu octants, %zu local points\n",
                  fmm.let().nodes.size(), fmm.let().points.size());
      std::printf("relative L2 error vs direct sum (100 samples): %s\n",
                  sci(err).c_str());
      PKIFMM_CHECK_MSG(err < 1e-3, "accuracy regression");
    }
  });
  std::printf("done in %.2f s wall\n", wall.seconds());
  return 0;
}
