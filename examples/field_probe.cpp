/// \file field_probe.cpp
/// \brief Separate sources and targets: probe the potential of a
/// clustered charge distribution on a measurement plane (targets carry
/// no charge; the cloud points are sources only), and render the slice
/// as an ASCII intensity map.
///
///   ./field_probe [--n=20000] [--grid=24] [--ranks=4]

#include <cstdio>
#include <unordered_map>

#include "comm/comm.hpp"
#include "core/fmm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pkifmm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int grid = static_cast<int>(cli.get_int("grid", 24));
  const int p = static_cast<int>(cli.get_int("ranks", 4));

  std::printf(
      "field probe: %llu source charges (cluster), %dx%d target plane "
      "z = 0.3, %d ranks\n",
      static_cast<unsigned long long>(n), grid, grid, p);

  kernels::LaplaceKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 80;
  const core::Tables tables(kernel, opts);

  std::vector<double> plane(grid * grid, 0.0);
  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    // Sources: positive charges in the clustered distribution.
    auto pts = octree::generate_points(octree::Distribution::kCluster, n,
                                       ctx.rank(), p, 1, 123);
    for (auto& pt : pts) {
      pt.kind = octree::kSource;
      pt.den[0] = 1.0 / static_cast<double>(n);
    }
    // Targets: rank 0 contributes the measurement plane through the
    // cluster center (z = 0.3).
    if (ctx.rank() == 0) {
      for (int j = 0; j < grid; ++j)
        for (int i = 0; i < grid; ++i) {
          octree::PointRec r{};
          r.pos[0] = (i + 0.5) / grid;
          r.pos[1] = (j + 0.5) / grid;
          r.pos[2] = 0.3;
          r.kind = octree::kTarget;
          r.gid = n + static_cast<std::uint64_t>(j) * grid + i;
          pts.push_back(r);
        }
      octree::assign_morton_ids(pts);
    }

    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();

    // Collect the plane values on rank 0.
    struct GP {
      std::uint64_t gid;
      double v;
    };
    std::vector<GP> mine(result.gids.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = {result.gids[i], result.potentials[i]};
    auto all = ctx.comm.allgatherv_concat(std::span<const GP>(mine));
    if (ctx.rank() == 0) {
      for (const auto& g : all) {
        PKIFMM_CHECK(g.gid >= n);
        plane[g.gid - n] = g.v;
      }
    }
  });

  // ASCII render: brightness ~ log potential.
  double lo = 1e300, hi = -1e300;
  for (double v : plane) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const char* shades = " .:-=+*#%@";
  std::printf("\npotential on the z = 0.3 plane (min %s, max %s):\n\n",
              sci(lo).c_str(), sci(hi).c_str());
  for (int j = grid - 1; j >= 0; --j) {
    std::printf("  ");
    for (int i = 0; i < grid; ++i) {
      const double t = (plane[j * grid + i] - lo) / (hi - lo + 1e-300);
      std::printf("%c%c", shades[int(t * 9.999)], shades[int(t * 9.999)]);
    }
    std::printf("\n");
  }
  std::printf("\n(the hot spot sits at the cluster center x=y=0.3)\n");
  return 0;
}
